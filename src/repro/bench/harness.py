"""Shared infrastructure for the experiment suite.

The paper runs two experiment families (Tables I and II) over one
Shanghai taxi day. This harness mirrors them as two *suites* — the
four-algorithm suite (capacity 4, 10,000 servers default) and the
tree-variant suite (capacity 6, 2,000 servers default) — scaled down to
laptop-size defaults that keep the paper's requests-per-server-hour
ratios, and scaled back up with ``REPRO_SCALE``.

Simulation cells are memoized: Fig. 6(b) and Fig. 8(a) read different
metrics (ACRT vs a single ART bucket) from the *same* sweep runs, so each
(suite, algorithm, parameter) cell is simulated exactly once per process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.core.constraints import ConstraintConfig
from repro.exceptions import TreeBudgetExceeded
from repro.roadnet.engine import make_engine
from repro.roadnet.generators import grid_city
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationReport
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload


def repro_scale() -> float:
    """Problem-size multiplier from the ``REPRO_SCALE`` env var."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass(frozen=True, slots=True)
class SuiteSpec:
    """One experiment family's base configuration."""

    name: str
    grid_rows: int
    grid_cols: int
    num_vehicles: int
    capacity: int | None
    num_trips: int
    duration_seconds: float
    seed: int
    #: Minimum trip length; longer trips raise per-vehicle concurrency
    #: (the paper's Shanghai trips are long relative to the city).
    min_trip_meters: float = 800.0
    #: Co-located request bursts mixed into the stream (Section V's
    #: airport-terminal pattern; drives the high-capacity tree blowup).
    burst_count: int = 0
    burst_size: int = 0

    def scaled(self, scale: float) -> "SuiteSpec":
        """Multiply fleet and demand by ``scale`` (>= 1 recommended)."""
        if scale == 1.0:
            return self
        return replace(
            self,
            num_vehicles=max(2, round(self.num_vehicles * scale)),
            num_trips=max(5, round(self.num_trips * scale)),
        )


#: Four-algorithm comparison (paper Table I): capacity 4; the paper's
#: 432,327 trips / 10,000 servers / day ≈ 1.8 requests per server-hour.
FOUR_SUITE = SuiteSpec(
    name="four",
    grid_rows=26,
    grid_cols=26,
    num_vehicles=16,
    capacity=4,
    num_trips=100,
    duration_seconds=3600.0,
    seed=42,
    min_trip_meters=1200.0,
)

#: Tree-variant comparison (paper Table II): capacity 6; 2,000 servers
#: default ≈ 9 requests per server-hour — the heavy-load regime in which
#: trees grow deep.
TREE_SUITE = SuiteSpec(
    name="tree",
    grid_rows=30,
    grid_cols=30,
    num_vehicles=10,
    capacity=6,
    num_trips=300,
    duration_seconds=3600.0,
    seed=7,
    min_trip_meters=1500.0,
)

#: The tree suite plus co-located airport-style bursts — used for the
#: capacity sweep (Fig. 9(c)) and the occupancy statistics, where the
#: paper's blowup is driven by exactly this pattern. Kept separate from
#: TREE_SUITE so the constraint/fleet sweeps stay tractable.
BURST_SUITE = SuiteSpec(
    name="burst",
    grid_rows=30,
    grid_cols=30,
    num_vehicles=10,
    capacity=6,
    num_trips=300,
    duration_seconds=3600.0,
    seed=7,
    min_trip_meters=1500.0,
    burst_count=3,
    burst_size=8,
)

#: Default hotspot merge radius θ for the hotspot tree variant, in
#: seconds of travel (30 s at 14 m/s = 420 m).
DEFAULT_THETA = 30.0

#: Per-insertion expansion budget standing in for the paper's
#: "reasonable time / 3 GB" cutoff (Fig. 9(c)).
DEFAULT_EXPANSION_BUDGET = 200_000


class BenchContext:
    """City, engine, workload and memoized simulation cells for a suite."""

    def __init__(self, suite: SuiteSpec):
        self.suite = suite
        self.city = grid_city(suite.grid_rows, suite.grid_cols, seed=suite.seed)
        self.engine = make_engine(self.city, "matrix")
        self.workload = ShanghaiLikeWorkload(
            self.city, seed=suite.seed, min_trip_meters=suite.min_trip_meters
        )
        self.trips = self.workload.generate(
            num_trips=suite.num_trips, duration_seconds=suite.duration_seconds
        )
        if suite.burst_count and suite.burst_size:
            from repro.sim.workload import burst_workload

            hotspots = self.workload.hotspots
            start = self.trips[0].request_time
            for b in range(suite.burst_count):
                when = start + (b + 1) * suite.duration_seconds / (
                    suite.burst_count + 1
                )
                self.trips.extend(
                    burst_workload(
                        self.city,
                        int(hotspots[b % len(hotspots)]),
                        suite.burst_size,
                        when,
                        dest_center_vertex=int(hotspots[(b + 1) % len(hotspots)]),
                        seed=suite.seed + b,
                    )
                )
            self.trips.sort(key=lambda t: t.request_time)
        self._cells: dict[tuple, SimulationReport | None] = {}

    def run_cell(self, **overrides) -> SimulationReport | None:
        """Simulate one parameter cell (memoized). ``None`` means the cell
        did not finish (tree expansion budget exceeded) — the paper's
        "breaks off" marker."""
        key = tuple(sorted(overrides.items(), key=lambda kv: str(kv[0])))
        if key in self._cells:
            return self._cells[key]
        params = {
            "num_vehicles": self.suite.num_vehicles,
            "capacity": self.suite.capacity,
            "seed": self.suite.seed,
        }
        params.update(overrides)
        config = SimulationConfig(**params)
        try:
            report = simulate(self.engine, config, self.trips)
        except TreeBudgetExceeded:
            report = None
        self._cells[key] = report
        return report


_CONTEXTS: dict[tuple[str, float], BenchContext] = {}


def get_context(suite: SuiteSpec) -> BenchContext:
    """Process-wide memoized context for a suite at the current scale."""
    scale = repro_scale()
    key = (suite.name, scale)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = BenchContext(suite.scaled(scale))
    return _CONTEXTS[key]


# ----------------------------------------------------------------------
# Output tables
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ExperimentTable:
    """A rendered experiment result, paper-artifact shaped."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[str]]
    notes: str = ""

    def render(self) -> str:
        """Fixed-width text table with title and notes."""
        widths = [
            max(len(str(self.headers[c])), *(len(str(r[c])) for r in self.rows))
            if self.rows
            else len(str(self.headers[c]))
            for c in range(len(self.headers))
        ]

        def fmt_row(cells) -> str:
            return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            fmt_row(self.headers),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(fmt_row(row) for row in self.rows)
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def save(self, directory: str) -> str:
        """Write the rendered table under ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        return path


def fmt_ms(seconds: float | None) -> str:
    """Milliseconds with sub-ms resolution; '-' for missing buckets."""
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.3f}"


def fmt_cell(report: SimulationReport | None, metric: str, bucket: int | None = None) -> str:
    """Extract one display cell from a report (``DNF`` when absent)."""
    if report is None:
        return "DNF"
    if metric == "acrt":
        return fmt_ms(report.acrt.mean)
    if metric == "art":
        return fmt_ms(report.art.mean_for(bucket))
    if metric == "service_rate":
        return f"{report.service_rate:.3f}"
    raise ValueError(f"unknown metric {metric!r}")
