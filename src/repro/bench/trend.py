"""Bench-trend series: extraction, history, regression comparison.

Every benchmark (:mod:`repro.bench`) writes a ``BENCH_*.json``
document. This module names the *trend series* inside those documents
— the handful of scalar numbers worth tracking run-over-run (solver
throughput, per-flush seconds, overlap ratio, service rates) — and
compares a current extraction against a committed history file
(``benchmarks/results/trend.json``), flagging changes beyond a
percentage threshold in each series' *worse* direction.

Two extraction paths, so old documents keep working:

* new documents carry an embedded ``trend_series`` block — benchmarks
  call :func:`attach_series` on the doc just before writing it;
* documents without one (anything committed before this module
  existed) fall back to the same pattern table the embed was built
  from, so ``tools/bench_trend.py`` never needs the benches re-run.

A series' ``direction`` says which way is better: ``higher``
(throughput, speedup, service rate) or ``lower`` (seconds, latency).
Regression percentage is always measured in the worse direction, so a
``+20 %`` regression on ``per_flush_seconds`` means it got 20 % slower.
"""

from __future__ import annotations

import json
import os

#: benchmark id (the doc's ``benchmark`` key) -> (dotted path pattern,
#: direction) pairs. ``*`` matches every key at that level; patterns
#: that match nothing contribute nothing (benchmarks vary their run
#: sets).
SERIES_PATTERNS: dict[str, tuple[tuple[str, str], ...]] = {
    "distance_plane_fan_out": (
        ("engines.*.batched_queries_per_sec", "higher"),
        ("engines.*.speedup", "higher"),
    ),
    "sharded_dispatch_flush": (
        ("global_solve.seconds", "lower"),
        ("runs.*.*.per_flush_seconds", "lower"),
        ("runs.*.*.speedup_vs_serial_1", "higher"),
    ),
    "pipeline_overlap": (
        ("runs.*.overlap_ratio_mean", "higher"),
        ("runs.*.assigned", "higher"),
    ),
    "adaptive_window": (
        ("runs.*.peak_service_rate", "higher"),
        ("runs.*.service_rate", "higher"),
        ("runs.*.assign_latency_s_p99", "lower"),
    ),
    "chaos": (
        ("runs.*.*.service_rate", "higher"),
    ),
}


def _walk(node, parts: list[str], prefix: str):
    """Yield ``(dotted_path, value)`` for every match of the pattern."""
    if not parts:
        yield prefix, node
        return
    head, rest = parts[0], parts[1:]
    if not isinstance(node, dict):
        return
    keys = sorted(node) if head == "*" else ([head] if head in node else [])
    for key in keys:
        child_prefix = f"{prefix}.{key}" if prefix else key
        yield from _walk(node[key], rest, child_prefix)


def extract_series(doc: dict) -> dict[str, dict]:
    """The doc's trend series: ``{path: {"value", "direction"}}``.

    Prefers the embedded ``trend_series`` block; falls back to pattern
    extraction keyed on the doc's ``benchmark`` id. Unknown benchmarks
    (or docs with no numeric matches) yield an empty dict — the tool
    reports them as untracked rather than failing.
    """
    embedded = doc.get("trend_series")
    if isinstance(embedded, dict):
        return dict(embedded)
    series: dict[str, dict] = {}
    for pattern, direction in SERIES_PATTERNS.get(doc.get("benchmark"), ()):
        for path, value in _walk(doc, pattern.split("."), ""):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            series[path] = {"value": float(value), "direction": direction}
    return series


def attach_series(doc: dict) -> dict:
    """Embed the doc's trend series in place (and return the doc) —
    benchmarks call this just before writing ``BENCH_*.json`` so the
    committed document is self-describing."""
    doc.pop("trend_series", None)
    doc["trend_series"] = extract_series(doc)
    return doc


def regression_pct(
    baseline: float, current: float, direction: str
) -> float | None:
    """Percent change measured in the series' *worse* direction
    (positive = regressed); ``None`` when the baseline is zero."""
    if baseline == 0:
        return None
    if direction == "higher":
        return (baseline - current) / abs(baseline) * 100.0
    return (current - baseline) / abs(baseline) * 100.0


def compare_series(
    current: dict[str, dict],
    history: dict[str, dict],
    threshold_pct: float,
) -> list[dict]:
    """Diff two extractions of the same document. Returns one record
    per series present in both, sorted worst-first:
    ``{series, direction, baseline, current, regression_pct, regressed}``.
    Series only in one side are skipped (new series have no baseline;
    removed series have no current)."""
    records = []
    for name in sorted(set(current) & set(history)):
        direction = current[name]["direction"]
        baseline = history[name]["value"]
        value = current[name]["value"]
        pct = regression_pct(baseline, value, direction)
        records.append(
            {
                "series": name,
                "direction": direction,
                "baseline": baseline,
                "current": value,
                "regression_pct": pct,
                "regressed": pct is not None and pct > threshold_pct,
            }
        )
    records.sort(
        key=lambda r: -(r["regression_pct"] or float("-inf"))
    )
    return records


def collect_bench_documents(root: str) -> dict[str, dict]:
    """Load every ``BENCH_*.json`` directly under ``root``:
    ``{file name: parsed doc}``."""
    documents = {}
    for name in sorted(os.listdir(root)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            with open(os.path.join(root, name), encoding="utf-8") as handle:
                documents[name] = json.load(handle)
    return documents
