"""Staged-pipeline overlap benchmark (``BENCH_pipeline.json``).

Runs one simulation workload — a large city, long trips, a flush's
worth of requests per 20 s window — through three dispatch
configurations that differ only in the quote stage:

* ``sync`` — ``quote_workers=0``, zero overlap window: the
  pre-pipeline order (quote, solve and commit as one blob at the
  flush instant);
* ``deferred`` — ``quote_workers=0`` with an overlap window: pipeline
  event timing, but quoting still runs synchronously at the solve
  instant (the determinism reference for the async run);
* ``async_thread`` — thread-backend quote workers: per-vehicle column
  quotes compute while the simulator keeps executing the overlap
  window's stop events, request arrivals and location reports.

Two properties are recorded per run and gated by
``benchmarks/test_pipeline_overlap.py``:

* the async run's assignments are *identical* to the deferred run's —
  staleness epochs + deterministic re-quotes make worker timing
  invisible;
* on the thread backend a meaningful fraction (>= 30 %) of quote wall
  time overlaps event execution — the async pipeline genuinely hides
  quoting behind the simulation instead of serializing it.

Run from the shell::

    PYTHONPATH=src python -m repro.bench.pipeline            # full run
    PYTHONPATH=src python -m repro.bench.pipeline --fast     # CI smoke
    PYTHONPATH=src python -m repro.bench.pipeline --out path/to.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.trend import attach_series
from repro.core.constraints import ConstraintConfig
from repro.roadnet.engine import make_engine
from repro.roadnet.generators import grid_city
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload

#: Default output file name, written to the current working directory
#: (the repo root under both the CI smoke step and the benchmark suite).
DEFAULT_OUT = "BENCH_pipeline.json"


def _deterministic_state(report) -> dict:
    """Everything a run produces except wall-clock timings."""
    return {
        "num_requests": report.num_requests,
        "num_assigned": report.num_assigned,
        "total_cost": report.total_assignment_cost,
        "service_log": {
            rid: (
                entry.get("vehicle"),
                entry.get("assigned_cost"),
                entry.get("pickup"),
                entry.get("dropoff"),
            )
            for rid, entry in report.service_log.items()
        },
    }


def stage_breakdown(report) -> dict:
    """Per-stage flush timings from the run's metrics registry.

    The same log-bucket histograms ``--metrics-out`` exports: the full
    flush wall (collect + solve + commit + cleanup), the quote stage,
    and the solver — each as mean/p50/p99 milliseconds.
    """
    stages = {}
    for stage, metric in (
        ("flush_total", "flush.total_s"),
        ("quote", "flush.quote_s"),
        ("solve", "flush.solve_s"),
    ):
        hist = report.registry.histogram(metric)
        stages[stage] = {
            "count": hist.count,
            "mean_ms": round((hist.mean or 0.0) * 1000.0, 4),
            "p50_ms": round((hist.quantile(0.50) or 0.0) * 1000.0, 4),
            "p99_ms": round((hist.quantile(0.99) or 0.0) * 1000.0, 4),
        }
    return stages


def run_pipeline_bench(
    out_path: str | None = DEFAULT_OUT,
    grid_side: int = 48,
    num_vehicles: int = 30,
    num_trips: int = 500,
    duration_s: float = 1200.0,
    min_trip_meters: float = 4000.0,
    wait_minutes: float = 4.0,
    batch_window_s: float = 20.0,
    quote_overlap_s: float = 18.0,
    quote_workers: int = 2,
    report_interval: float = 5.0,
    engine_kind: str = "dijkstra",
    seed: int = 7,
) -> dict:
    """Benchmark the staged pipeline's quote/event overlap; return (and
    optionally write) the result document.

    The workload is deliberately shaped so the simulator has real event
    work to execute inside the overlap window: a big city makes each
    arrival's ``make_request`` shortest-path stamp expensive, long trips
    keep those searches wide, and a dense location-report interval adds
    steady cruise bookkeeping — while tight wait budgets keep quote
    fan-outs local. That is the regime async quoting targets.
    """
    city = grid_city(grid_side, grid_side, seed=seed)
    trips = ShanghaiLikeWorkload(
        city, seed=seed, min_trip_meters=min_trip_meters
    ).generate(num_trips=num_trips, duration_seconds=duration_s)
    constraints = ConstraintConfig.from_minutes(wait_minutes, 20.0)

    cells = {
        "sync": {"quote_workers": 0, "quote_overlap_s": 0.0},
        "deferred": {"quote_workers": 0, "quote_overlap_s": quote_overlap_s},
        "async_thread": {
            "quote_workers": quote_workers,
            "quote_backend": "thread",
            "quote_overlap_s": quote_overlap_s,
        },
    }
    runs: dict[str, dict] = {}
    states: dict[str, dict] = {}
    for label, overrides in cells.items():
        # Fresh engine per cell: no run may inherit another's warm caches.
        engine = make_engine(city, engine_kind)
        config = SimulationConfig(
            num_vehicles=num_vehicles,
            algorithm="kinetic",
            constraints=constraints,
            report_interval=report_interval,
            engine_kind=engine_kind,
            dispatch_policy="lap",
            batch_window_s=batch_window_s,
            seed=seed,
            **overrides,
        )
        report = simulate(engine, config, trips)
        summary = report.summary()
        states[label] = _deterministic_state(report)
        runs[label] = {
            "wall_seconds": report.wall_seconds,
            "quote_ms_mean": summary["quote_ms_mean"],
            "overlap_ratio_mean": summary["overlap_ratio_mean"],
            "staleness_requotes": summary["staleness_requotes"],
            "quote_failures": summary["quote_failures"],
            "pipeline_flushes": summary["pipeline_flushes"],
            "service_rate": summary["service_rate"],
            "assigned": summary["assigned"],
            "guarantee_violations": len(report.verify_service_guarantees()),
            "assign_latency_s_p50": summary["assign_latency_s_p50"],
            "assign_latency_s_p99": summary["assign_latency_s_p99"],
            "stages": stage_breakdown(report),
        }
    runs["async_thread"]["matches_deferred"] = (
        states["async_thread"] == states["deferred"]
    )
    runs["deferred"]["matches_sync"] = states["deferred"] == states["sync"]

    result = {
        "benchmark": "pipeline_overlap",
        "workload": {
            "grid_side": grid_side,
            "num_vertices": city.num_vertices,
            "num_vehicles": num_vehicles,
            "num_trips": len(trips),
            "duration_s": duration_s,
            "min_trip_meters": min_trip_meters,
            "wait_minutes": wait_minutes,
            "batch_window_s": batch_window_s,
            "quote_overlap_s": quote_overlap_s,
            "quote_workers": quote_workers,
            "report_interval": report_interval,
            "engine_kind": engine_kind,
            "seed": seed,
        },
        "runs": runs,
    }
    attach_series(result)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def render(result: dict) -> str:
    """Fixed-width table of one :func:`run_pipeline_bench` document."""
    w = result["workload"]
    lines = [
        "== pipeline_overlap: quote stage vs event execution ==",
        f"{'run':13s} | {'wall_s':>7s} | {'quote_ms':>9s} | "
        f"{'overlap':>7s} | {'requotes':>8s} | {'assigned':>8s}",
        "-" * 66,
    ]
    for label, cell in result["runs"].items():
        lines.append(
            f"{label:13s} | {cell['wall_seconds']:>7.2f} | "
            f"{cell['quote_ms_mean']:>9.3f} | "
            f"{cell['overlap_ratio_mean']:>6.1%} | "
            f"{cell['staleness_requotes']:>8d} | "
            f"{cell['assigned']:>8d}"
        )
    match = result["runs"]["async_thread"].get("matches_deferred")
    lines.append(
        f"note: {w['num_trips']} trips, {w['num_vehicles']} vehicles on a "
        f"{w['grid_side']}x{w['grid_side']} {w['engine_kind']} city; "
        f"window {w['batch_window_s']:g}s, overlap {w['quote_overlap_s']:g}s; "
        f"async assignments identical to deferred: "
        f"{'yes' if match else 'NO'}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.pipeline",
        description="Measure quote/event overlap of the staged pipeline.",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default ./{DEFAULT_OUT})",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: smaller city and fewer trips (no overlap "
        "floor is asserted at this scale — the determinism columns are "
        "the smoke signal)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        result = run_pipeline_bench(
            out_path=args.out,
            grid_side=24,
            num_vehicles=14,
            num_trips=150,
            duration_s=900.0,
            min_trip_meters=2000.0,
        )
    else:
        result = run_pipeline_bench(out_path=args.out)
    print(render(result))
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
