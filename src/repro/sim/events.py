"""Discrete events and the simulation event queue."""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field

from repro.exceptions import SimulationError


class EventKind(enum.IntEnum):
    """Event types, ordered so simultaneous events resolve deterministically:
    stop arrivals apply before new requests at the same instant, batch
    flushes see every request that arrived by their instant, quote
    completions (and the solve+commit they trigger) land right after the
    flush that issued them when the overlap window is zero, and location
    reports come last."""

    STOP_REACHED = 0
    REQUEST_ARRIVAL = 1
    BATCH_DISPATCH = 2
    QUOTE_READY = 3
    LOCATION_REPORT = 4


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled simulation event.

    ``payload`` is kind-specific: a workload trip spec for request
    arrivals, a ``(vehicle_id, plan_version)`` pair for stop arrivals
    (stale versions are dropped — vehicles re-plan), a vehicle id for
    location reports, ``None`` for periodic batch-dispatch flushes, and
    the in-flight pipeline stage — ``(batch,
    :class:`~repro.dispatch.quoting.PendingQuotes`, carry deadline)`` —
    for quote completions (the carry deadline is the next flush's
    commit instant, or ``None`` when carry-over is off or no next flush
    exists).
    """

    time: float
    kind: EventKind
    payload: object = field(compare=False, default=None)


class EventQueue:
    """Min-heap of events ordered by (time, kind, insertion order)."""

    def __init__(self):
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._last_time = float("-inf")

    def push(self, event: Event) -> None:
        """Schedule an event; past events (before the last pop) are
        rejected to catch causality bugs early."""
        if event.time < self._last_time - 1e-9:
            raise SimulationError(
                f"event at t={event.time} scheduled before current "
                f"time {self._last_time}"
            )
        heapq.heappush(
            self._heap, (event.time, int(event.kind), next(self._counter), event)
        )

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        time, _, _, event = heapq.heappop(self._heap)
        self._last_time = time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def current_time(self) -> float:
        """Time of the most recently popped event."""
        return self._last_time
