"""Simulation configuration.

Bundles every knob of the paper's experimental design (Tables I and II)
plus the reproduction-specific scale parameters, with the paper's
defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import DEFAULT_CONSTRAINTS, ConstraintConfig


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """One simulation run's parameters.

    Attributes
    ----------
    num_vehicles:
        Fleet size (paper sweeps 500 ... 20,000).
    capacity:
        Seats per vehicle; ``None`` = unlimited (Fig. 9(c) "unlim").
    constraints:
        Waiting-time / detour guarantee for all requests.
    algorithm:
        ``"kinetic"`` (live trees) or any
        :data:`repro.algorithms.ALGORITHM_REGISTRY` name for
        reschedule-from-scratch vehicles.
    tree_mode / hotspot_theta / eager_invalidation:
        Kinetic-tree variant knobs (ignored for other algorithms).
        ``hotspot_theta`` is in seconds of travel (the paper's θ is a
        small distance; at 14 m/s one second is 14 m).
    report_interval:
        Seconds between vehicle location reports to the grid index
        (paper: 20-60 s).
    dispatch_policy / batch_window_s / assignment_rounds:
        Batched-dispatch subsystem (:mod:`repro.dispatch`).
        ``dispatch_policy`` picks the batch assignment strategy
        (``"greedy"`` — paper-equivalent sequential cheapest quote,
        ``"lap"`` — one global linear-assignment round, ``"iterative"``
        — up to ``assignment_rounds`` re-quoting rounds).
        ``batch_window_s`` is the rolling-window length in seconds; 0
        dispatches each request immediately on arrival (the paper's
        behavior — with the ``greedy`` policy this reduces exactly to
        the immediate :class:`~repro.core.matching.Dispatcher`).
        The ``"sharded"`` policy federates the lap solve over spatial
        shards (:mod:`repro.dispatch.sharding`).
    num_shards / shard_backend / shard_boundary_cells:
        Sharded-dispatch knobs (only honored by the ``"sharded"``
        policy). ``num_shards`` is the target spatial partition count
        (1 = global solve, bit-identical to ``"lap"``);
        ``shard_backend`` picks the per-shard solve executor
        (``"serial"``, ``"thread"`` or ``"process"`` — results are
        identical across backends); ``shard_boundary_cells`` is the
        optional candidate-halo width in grid cells (``None`` keeps
        every feasible candidate per shard).
    shard_zero_copy / shard_persistent_workers:
        Zero-copy process fan-out (:mod:`repro.dispatch.sharding.shm`).
        ``shard_zero_copy=True`` publishes each flush's shard matrices
        into a double-buffered shared-memory arena so process workers
        solve views instead of pickled copies;
        ``shard_persistent_workers=True`` keeps the worker processes
        (and their cached arena attachments) alive across flushes
        behind the small attach/solve/detach/shutdown task protocol.
        Both default off and both are inert on the serial/thread
        backends; assignments are bit-identical with either flag set
        (determinism contract 11).
    adaptive_window / window_min_s / window_max_s:
        Batch-window autotuning (:mod:`repro.dispatch.adaptive`). With
        ``adaptive_window=True`` the window length is retuned at every
        flush from an EWMA of request arrival intensity — short windows
        off-peak, longer in rush hour — clamped to
        ``[window_min_s, window_max_s]`` (both required; the configured
        ``batch_window_s`` is the initial value and must lie inside the
        band). ``quote_overlap_s`` scales proportionally with the
        window. ``False`` (default) keeps the fixed window and is
        bit-identical to pre-controller runs.
    adaptive_ewma_alpha / adaptive_target_batch / adaptive_latency_headroom:
        Controller shape knobs (only honored with ``adaptive_window``):
        EWMA smoothing weight of the newest intensity sample, the batch
        size at which a maximal window saturates (sets the intensity →
        window ramp slope), and the real-time guard's quote-latency
        headroom fraction (wall-clock safety channel; dormant at
        simulation scale — see ``docs/determinism.md``).
    carry_over:
        Carry-over batching (Simonetto-style): requests that lose a
        flush's assignment re-enter the next window — bounded by their
        remaining wait budget — instead of being settled in-batch.
        ``False`` (default) keeps today's in-batch cleanup/rejection.
    quote_workers / quote_backend / quote_overlap_s:
        Staged-pipeline quote stage (:mod:`repro.dispatch.quoting`).
        ``quote_workers=0`` (default) quotes synchronously at the
        solve instant — the pre-pipeline order, bit-identical to it;
        ``>= 1`` issues the batch's per-vehicle column quotes eagerly
        at flush time on the ``quote_backend`` (``"thread"`` overlaps
        quoting with event execution; ``"serial"`` quotes inline at
        flush — determinism reference). ``quote_overlap_s`` is the
        simulated-time gap between a flush (quote issue) and its
        ``QUOTE_READY`` solve+commit; stop events executing inside the
        gap bump vehicle schedule epochs and force deterministic
        re-quotes at commit. Assignments are identical for every
        (workers, backend) combination at a fixed overlap.
    engine_kind:
        Shortest-path engine backing the run (see
        :data:`repro.roadnet.engine.ENGINE_KINDS`): ``"auto"`` picks
        matrix for precomputable graphs and Dijkstra otherwise;
        ``"matrix"`` / ``"dijkstra"`` / ``"hub_label"`` / ``"astar"`` /
        ``"ch"`` force a specific engine. Honored by every entry point
        that builds its own engine (the sim CLI, examples); callers of
        :func:`repro.sim.simulator.simulate` that pass a prebuilt engine
        are expected to build it with
        ``make_engine(graph, config.engine_kind)``.
    grid_cell_meters:
        Grid-index cell size.
    trace / trace_out / metrics_out:
        Flush-pipeline telemetry (:mod:`repro.obs`). ``trace=True``
        records structured spans (flush → snapshot → quote → solve →
        commit, with per-shard and per-worker children) on the run's
        :class:`~repro.obs.Tracer`; ``trace_out`` additionally writes
        them as Chrome trace-event JSONL (Perfetto-loadable; requires
        ``trace=True``); ``metrics_out`` writes the run's
        :class:`~repro.obs.MetricsRegistry` (p50/p90/p99 latency
        histograms) as ``metrics.json`` and works with tracing off.
        Telemetry is write-only: no dispatch decision reads it, so
        every determinism pin holds bit-for-bit with ``trace=True``
        (``docs/determinism.md``).
    timeseries_out / timeseries_window_s / timeseries_ring:
        Live-ops time series (:mod:`repro.obs.live`). ``timeseries_out``
        writes one JSONL row per completed *simulated-time* window
        (length ``timeseries_window_s`` seconds) with throughput,
        per-window counter deltas and histogram summaries, and rolling
        quantiles merged over the last ``timeseries_ring`` windows.
        Like all telemetry it is write-only: a run with the live layer
        enabled is bit-identical to one without it (determinism
        contract 9).
    slo / slo_out:
        Service-level objectives (:mod:`repro.obs.slo`). ``slo`` is a
        comma-joined spec such as
        ``"service_rate>=0.9,wait_p99<=300"`` evaluated per time-series
        window with burn-rate alerting; ``slo_out`` writes the
        machine-readable verdict document (``slo.json``; requires
        ``slo``). Verdicts use simulated-time metrics only, so a fixed
        seed reproduces ``slo.json`` exactly.
    live_report_every:
        Print one console status line every N completed time-series
        windows (0 = never). Implies the live layer.
    resource_monitor:
        Sample RSS, GC pauses, worker-pool queue depth (and
        tracemalloc peak, if the caller started tracemalloc) into the
        registry once per time-series window
        (:mod:`repro.obs.resources`).
    fault_spec / fault_seed:
        Deterministic fault injection (:mod:`repro.faults`).
        ``fault_spec`` is a comma-joined list of
        ``site:kind:trigger[:delay_s]`` clauses (see
        ``docs/robustness.md`` for the grammar); ``None`` (default)
        disarms the injector entirely — determinism contract 10
        guarantees the hardened pipeline is then bit-identical to the
        unhardened one. ``fault_seed`` seeds the per-clause RNG streams;
        a fixed ``(fault_spec, fault_seed)`` pair replays bit-identically
        on the serial backend.
    flush_deadline_s:
        Per-flush deadline budget in *charged* seconds (injected delays
        and retry backoffs — virtual time, so serial runs stay
        deterministic). A flush that exhausts it is downgraded to the
        greedy policy for that flush only (the degradation ladder's
        last rung). ``None`` (default) = no deadline.
    task_retries / task_timeout_s / retry_backoff_s / retry_backoff_cap_s:
        Retry policy for hardened worker tasks (quote columns, shard
        solves): up to ``task_retries`` retries after the first attempt,
        each awaited at most ``task_timeout_s`` seconds (``None`` = no
        timeout), with exponential backoff from ``retry_backoff_s``
        capped at ``retry_backoff_cap_s`` (slept only on genuinely
        concurrent backends; charged to the flush budget otherwise).
    seed:
        Master seed for fleet placement and cruising.
    """

    num_vehicles: int = 100
    capacity: int | None = 4
    constraints: ConstraintConfig = field(default=DEFAULT_CONSTRAINTS)
    algorithm: str = "kinetic"
    tree_mode: str = "slack"
    hotspot_theta: float | None = None
    eager_invalidation: bool = False
    report_interval: float = 60.0
    engine_kind: str = "auto"
    dispatch_policy: str = "greedy"
    batch_window_s: float = 0.0
    assignment_rounds: int = 3
    adaptive_window: bool = False
    window_min_s: float | None = None
    window_max_s: float | None = None
    adaptive_ewma_alpha: float = 0.3
    adaptive_target_batch: float = 12.0
    adaptive_latency_headroom: float = 0.5
    carry_over: bool = False
    num_shards: int = 1
    shard_backend: str = "serial"
    shard_boundary_cells: int | None = None
    shard_zero_copy: bool = False
    shard_persistent_workers: bool = False
    quote_workers: int = 0
    quote_backend: str = "thread"
    quote_overlap_s: float = 0.0
    grid_cell_meters: float = 500.0
    use_grid_index: bool = True
    #: Assignment objective: "total" (the paper's — minimize the full
    #: augmented-schedule cost) or "delta" (ablation — minimize the extra
    #: cost over the vehicle's current plan).
    objective: str = "total"
    #: Per-insertion kinetic-tree expansion budget; exceeding it raises
    #: :class:`~repro.exceptions.TreeBudgetExceeded` — the analogue of the
    #: paper's time/3 GB cutoff in Fig. 9(c). ``None`` = unbounded.
    tree_expansion_budget: int | None = None
    #: Keep only this many cheapest schedules per tree after insertion
    #: (Section V's load shedding, generalized). ``None`` = keep all.
    tree_schedule_cap: int | None = None
    trace: bool = False
    trace_out: str | None = None
    metrics_out: str | None = None
    timeseries_out: str | None = None
    timeseries_window_s: float = 60.0
    timeseries_ring: int = 5
    slo: str | None = None
    slo_out: str | None = None
    live_report_every: int = 0
    resource_monitor: bool = False
    fault_spec: str | None = None
    fault_seed: int = 0
    flush_deadline_s: float | None = None
    task_retries: int = 2
    task_timeout_s: float | None = None
    retry_backoff_s: float = 0.05
    retry_backoff_cap_s: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.num_vehicles < 1:
            raise ValueError("num_vehicles must be >= 1")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        if self.report_interval <= 0:
            raise ValueError("report_interval must be positive")
        from repro.roadnet.engine import ENGINE_KINDS

        if self.engine_kind not in ENGINE_KINDS:
            known = ", ".join(ENGINE_KINDS)
            raise ValueError(f"engine_kind must be one of: {known}")
        from repro.dispatch.policies import POLICY_REGISTRY

        if self.dispatch_policy not in POLICY_REGISTRY:
            known = ", ".join(sorted(POLICY_REGISTRY))
            raise ValueError(
                f"dispatch_policy must be one of: {known}"
            )
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if (
            self.batch_window_s > 0
            and self.batch_window_s >= self.constraints.max_wait_seconds
        ):
            raise ValueError(
                f"batch_window_s ({self.batch_window_s:g}) must be shorter "
                f"than the waiting-time guarantee "
                f"({self.constraints.max_wait_seconds:g} s): requests held "
                "for a full window would already have expired at dispatch"
            )
        if self.assignment_rounds < 1:
            raise ValueError("assignment_rounds must be >= 1")
        if self.adaptive_window:
            if self.batch_window_s <= 0:
                raise ValueError(
                    "adaptive_window requires batched dispatch "
                    "(batch_window_s > 0): immediate per-request dispatch "
                    "has no window to retune"
                )
            if self.window_min_s is None or self.window_max_s is None:
                raise ValueError(
                    "adaptive_window requires both window_min_s and "
                    "window_max_s (the clamp band)"
                )
            if not 0 < self.window_min_s <= self.window_max_s:
                raise ValueError(
                    "need 0 < window_min_s <= window_max_s, got "
                    f"[{self.window_min_s:g}, {self.window_max_s:g}]"
                )
            if not (
                self.window_min_s <= self.batch_window_s <= self.window_max_s
            ):
                raise ValueError(
                    f"batch_window_s ({self.batch_window_s:g}) is the "
                    "initial window and must lie inside "
                    f"[window_min_s, window_max_s] = "
                    f"[{self.window_min_s:g}, {self.window_max_s:g}]"
                )
            if not 0.0 < self.adaptive_ewma_alpha <= 1.0:
                raise ValueError("adaptive_ewma_alpha must be in (0, 1]")
            if self.adaptive_target_batch <= 0:
                raise ValueError("adaptive_target_batch must be positive")
            if self.adaptive_latency_headroom <= 0:
                raise ValueError("adaptive_latency_headroom must be positive")
            overlap_fraction = self.quote_overlap_s / self.batch_window_s
            if (
                self.window_max_s * (1.0 + overlap_fraction)
                >= self.constraints.max_wait_seconds
            ):
                raise ValueError(
                    "window_max_s plus its proportional quote overlap "
                    f"({self.window_max_s * (1.0 + overlap_fraction):g}) "
                    "must stay under the waiting-time guarantee "
                    f"({self.constraints.max_wait_seconds:g} s): requests "
                    "held through a maximal window would already have "
                    "expired at commit"
                )
        elif self.window_min_s is not None or self.window_max_s is not None:
            raise ValueError(
                "window_min_s/window_max_s are the adaptive clamp band "
                "and require adaptive_window=True"
            )
        if self.carry_over and self.batch_window_s <= 0:
            raise ValueError(
                "carry_over requires batched dispatch (batch_window_s > 0): "
                "immediate per-request dispatch has no next window to "
                "carry into"
            )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        from repro.dispatch.sharding import SHARD_BACKENDS

        if self.shard_backend not in SHARD_BACKENDS:
            known = ", ".join(SHARD_BACKENDS)
            raise ValueError(f"shard_backend must be one of: {known}")
        if self.shard_boundary_cells is not None and self.shard_boundary_cells < 0:
            raise ValueError("shard_boundary_cells must be >= 0 or None")
        if (
            self.dispatch_policy == "sharded"
            and self.num_shards > 1
            and not self.use_grid_index
        ):
            raise ValueError(
                "sharded dispatch with num_shards > 1 requires the grid "
                "index (use_grid_index=True): without it every flush "
                "would silently degenerate to a single global shard"
            )
        if self.quote_workers < 0:
            raise ValueError("quote_workers must be >= 0")
        from repro.dispatch.quoting import QUOTE_BACKENDS

        if self.quote_backend not in QUOTE_BACKENDS:
            known = ", ".join(QUOTE_BACKENDS)
            raise ValueError(
                f"quote_backend must be one of: {known} (quoting reads "
                "live agent schedules and cannot cross a process boundary)"
            )
        if self.quote_overlap_s < 0:
            raise ValueError("quote_overlap_s must be >= 0")
        if (
            self.quote_workers > 0 or self.quote_overlap_s > 0
        ) and self.batch_window_s <= 0:
            raise ValueError(
                "the staged quote pipeline (quote_workers/quote_overlap_s) "
                "requires batched dispatch (batch_window_s > 0): immediate "
                "per-request dispatch has no flush to overlap"
            )
        if (
            self.batch_window_s > 0
            and self.quote_overlap_s >= self.batch_window_s
        ):
            raise ValueError(
                f"quote_overlap_s ({self.quote_overlap_s:g}) must be "
                f"shorter than batch_window_s ({self.batch_window_s:g}): "
                "a flush's quotes must commit before the next flush"
            )
        if (
            self.batch_window_s > 0
            and self.batch_window_s + self.quote_overlap_s
            >= self.constraints.max_wait_seconds
        ):
            raise ValueError(
                "batch_window_s + quote_overlap_s "
                f"({self.batch_window_s + self.quote_overlap_s:g}) must "
                "stay under the waiting-time guarantee "
                f"({self.constraints.max_wait_seconds:g} s): requests held "
                "through a full window plus the quote overlap would "
                "already have expired at commit"
            )
        if self.trace_out is not None and not self.trace:
            raise ValueError(
                "trace_out requires trace=True: there are no spans to "
                "export from an untraced run"
            )
        if self.timeseries_window_s <= 0:
            raise ValueError("timeseries_window_s must be positive")
        if self.timeseries_ring < 1:
            raise ValueError("timeseries_ring must be >= 1")
        if self.live_report_every < 0:
            raise ValueError("live_report_every must be >= 0")
        if self.slo_out is not None and self.slo is None:
            raise ValueError(
                "slo_out requires an SLO spec (slo=...): there is no "
                "verdict to write without objectives"
            )
        from repro.obs.slo import parse_slo_spec

        # Like fault specs: grammar errors (unknown metric, bad
        # operator or threshold) surface at config time, not mid-run.
        parse_slo_spec(self.slo)
        from repro.faults import parse_fault_spec

        # Parse errors (unknown site/kind, malformed trigger) surface
        # here, at config time, not mid-simulation.
        parse_fault_spec(self.fault_spec)
        if self.flush_deadline_s is not None and self.flush_deadline_s <= 0:
            raise ValueError("flush_deadline_s must be positive or None")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive or None")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.retry_backoff_cap_s < self.retry_backoff_s:
            raise ValueError(
                "retry_backoff_cap_s must be >= retry_backoff_s"
            )
