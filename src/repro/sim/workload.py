"""Synthetic Shanghai-like trip workloads.

The paper replays 432,327 real taxi trips of one Shanghai day (May 29,
2009) over a 122,319-vertex road network. That dataset is proprietary, so
this module generates the closest synthetic equivalent (see DESIGN.md,
"Substitutions"):

* **spatial structure** — origins/destinations drawn from a mixture of
  hotspot zones (airport/station/CBD analogues, which drive kinetic-tree
  blowup and hotspot clustering) and a uniform background;
* **temporal structure** — an inhomogeneous Poisson process with morning
  and evening rush-hour peaks over the simulated horizon;
* **intensity calibration** — ``trips_per_vehicle_hour`` defaults to the
  paper's ratio (432,327 trips / 17,000 taxis / 24 h ≈ 1.06).

Matching difficulty for every algorithm is a function of request density
per server, spatial clustering, and constraint tightness — all preserved
by construction and parameterized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    SHANGHAI_DAY_SECONDS,
    SHANGHAI_NUM_TAXIS,
    SHANGHAI_NUM_TRIPS,
)
from repro.roadnet.graph import RoadNetwork

#: The paper dataset's request intensity.
PAPER_TRIPS_PER_VEHICLE_HOUR = SHANGHAI_NUM_TRIPS / SHANGHAI_NUM_TAXIS / (
    SHANGHAI_DAY_SECONDS / 3600.0
)


@dataclass(frozen=True, slots=True)
class TripSpec:
    """A raw workload trip: where, where to, and when — the paper's
    ``t.s``, ``t.e``, ``t.time``, pre-mapped to road vertices."""

    origin: int
    destination: int
    request_time: float


def _rush_hour_weights(hours: np.ndarray) -> np.ndarray:
    """Relative request intensity by hour-of-day: base load plus morning
    (~8h) and evening (~18h) Gaussian peaks."""
    morning = np.exp(-0.5 * ((hours - 8.0) / 1.5) ** 2)
    evening = np.exp(-0.5 * ((hours - 18.0) / 2.0) ** 2)
    return 0.35 + 1.0 * morning + 1.2 * evening


class ShanghaiLikeWorkload:
    """Synthetic trip-stream generator over a road network.

    Parameters
    ----------
    network:
        Road network with coordinates.
    num_hotspots:
        Number of high-demand zones.
    hotspot_weight:
        Probability that a trip endpoint is drawn from a hotspot rather
        than the uniform background.
    hotspot_radius_meters:
        Spatial spread of each hotspot (Gaussian).
    min_trip_meters:
        Discard trips whose straight-line length is below this (degenerate
        micro-trips do not occur in taxi data).
    seed:
        RNG seed; the generator is fully deterministic given it.
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_hotspots: int = 6,
        hotspot_weight: float = 0.55,
        hotspot_radius_meters: float = 600.0,
        min_trip_meters: float = 800.0,
        seed: int = 0,
    ):
        if network.coords is None:
            raise ValueError("workload generation needs vertex coordinates")
        if not 0.0 <= hotspot_weight <= 1.0:
            raise ValueError("hotspot_weight must be in [0, 1]")
        self.network = network
        self.rng = np.random.default_rng(seed)
        self.hotspot_weight = hotspot_weight
        self.hotspot_radius = hotspot_radius_meters
        self.min_trip_meters = min_trip_meters
        self.hotspots = self.rng.choice(
            network.num_vertices, size=min(num_hotspots, network.num_vertices),
            replace=False,
        )
        self._kdtree = None

    # ------------------------------------------------------------------
    def _nearest_vertices(self, points: np.ndarray) -> np.ndarray:
        from scipy.spatial import cKDTree

        if self._kdtree is None:
            self._kdtree = cKDTree(self.network.coords)
        return self._kdtree.query(points)[1]

    def _sample_endpoints(self, count: int) -> np.ndarray:
        """Sample ``count`` vertices from the hotspot/background mixture."""
        from_hotspot = self.rng.random(count) < self.hotspot_weight
        n_hot = int(from_hotspot.sum())
        out = np.empty(count, dtype=np.int64)
        # Background: uniform over vertices.
        out[~from_hotspot] = self.rng.integers(
            0, self.network.num_vertices, size=count - n_hot
        )
        if n_hot:
            centers = self.rng.choice(self.hotspots, size=n_hot)
            jitter = self.rng.normal(0.0, self.hotspot_radius, size=(n_hot, 2))
            points = self.network.coords[centers] + jitter
            out[from_hotspot] = self._nearest_vertices(points)
        return out

    def _sample_times(self, count: int, duration: float, start: float) -> np.ndarray:
        """Arrival times from the rush-hour intensity profile (inverse-CDF
        over a piecewise-constant hourly profile)."""
        grid = np.linspace(0.0, duration, num=max(2, int(duration // 600) + 2))
        hours = ((start + grid) % SHANGHAI_DAY_SECONDS) / 3600.0
        weights = _rush_hour_weights(hours)
        cdf = np.cumsum(weights)
        cdf = cdf / cdf[-1]
        u = self.rng.random(count)
        times = start + np.interp(u, cdf, grid)
        times.sort()
        return times

    # ------------------------------------------------------------------
    def generate(
        self,
        num_trips: int,
        duration_seconds: float,
        start_seconds: float = 7 * 3600.0,
    ) -> list[TripSpec]:
        """Generate ``num_trips`` trips over ``[start, start + duration]``,
        sorted by request time."""
        if num_trips < 0:
            raise ValueError("num_trips must be non-negative")
        specs: list[TripSpec] = []
        times = self._sample_times(num_trips, duration_seconds, start_seconds)
        produced = 0
        guard = 0
        while produced < num_trips and guard < 20:
            need = num_trips - produced
            origins = self._sample_endpoints(need)
            destinations = self._sample_endpoints(need)
            coords = self.network.coords
            spans = np.hypot(
                coords[origins, 0] - coords[destinations, 0],
                coords[origins, 1] - coords[destinations, 1],
            )
            ok = (origins != destinations) & (spans >= self.min_trip_meters)
            for o, d_, keep in zip(origins, destinations, ok):
                if keep:
                    specs.append(TripSpec(int(o), int(d_), float(times[produced])))
                    produced += 1
                    if produced == num_trips:
                        break
            guard += 1
        if produced < num_trips:
            raise ValueError(
                "could not generate enough valid trips; relax min_trip_meters "
                "or use a larger network"
            )
        specs.sort(key=lambda s: s.request_time)
        return specs

    def generate_for_fleet(
        self,
        num_vehicles: int,
        duration_seconds: float,
        trips_per_vehicle_hour: float = PAPER_TRIPS_PER_VEHICLE_HOUR,
        start_seconds: float = 7 * 3600.0,
    ) -> list[TripSpec]:
        """Generate a stream whose intensity matches the paper's
        trips-per-taxi ratio for the given fleet size and horizon."""
        num_trips = int(
            round(num_vehicles * trips_per_vehicle_hour * duration_seconds / 3600.0)
        )
        return self.generate(num_trips, duration_seconds, start_seconds)


def burst_workload(
    network: RoadNetwork,
    center_vertex: int,
    num_trips: int,
    request_time: float,
    spread_meters: float = 150.0,
    trip_length_meters: float = 4000.0,
    dest_center_vertex: int | None = None,
    dest_spread_meters: float = 150.0,
    seed: int = 0,
) -> list[TripSpec]:
    """A co-located request burst (airport-terminal scenario, Section V):
    ``num_trips`` pickups within ``spread_meters`` of one center at nearly
    the same instant.

    With ``dest_center_vertex`` set, destinations also cluster (the
    airport -> downtown flow): then almost *any* interleaving of the
    pickups and of the dropoffs is a valid schedule, which is exactly the
    factorial blowup Section V describes ("8 pickups ... 8! = 40,320
    possibilities") and what hotspot clustering collapses. Without it,
    destinations scatter on a ring ``trip_length_meters`` away.
    """
    if network.coords is None:
        raise ValueError("burst workload needs vertex coordinates")
    from scipy.spatial import cKDTree

    rng = np.random.default_rng(seed)
    tree = cKDTree(network.coords)
    center = network.coords[center_vertex]
    pickups = tree.query(
        center + rng.normal(0.0, spread_meters, size=(num_trips, 2))
    )[1]
    if dest_center_vertex is not None:
        dest_center = network.coords[dest_center_vertex]
        targets = dest_center + rng.normal(
            0.0, dest_spread_meters, size=(num_trips, 2)
        )
    else:
        angles = rng.uniform(0, 2 * np.pi, size=num_trips)
        targets = center + trip_length_meters * np.column_stack(
            [np.cos(angles), np.sin(angles)]
        )
    dropoffs = tree.query(targets)[1]
    specs = []
    for i, (o, d) in enumerate(zip(pickups, dropoffs)):
        if int(o) == int(d):
            continue
        specs.append(TripSpec(int(o), int(d), request_time + 0.5 * i))
    return specs
