"""Fleet construction.

"A vehicle is initialized to a random vertex in the city" (Section VI);
each vehicle gets its own deterministic cruising RNG stream derived from
the master seed, and an agent matching the configured algorithm. Every
agent starts at schedule epoch 0 (the staleness counter the staged
dispatch pipeline validates quotes against; see
:mod:`repro.dispatch.quoting`).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import make_algorithm
from repro.core.matching import KineticAgent, RescheduleAgent, VehicleAgent
from repro.core.vehicle import Vehicle
from repro.sim.config import SimulationConfig


def build_fleet(
    engine, config: SimulationConfig, start_time: float = 0.0
) -> list[VehicleAgent]:
    """Create ``config.num_vehicles`` agents at random vertices."""
    rng = np.random.default_rng(config.seed)
    n = engine.graph.num_vertices
    starts = rng.integers(0, n, size=config.num_vehicles)
    agents: list[VehicleAgent] = []
    for vid in range(config.num_vehicles):
        vehicle = Vehicle(
            vehicle_id=vid,
            start_vertex=int(starts[vid]),
            start_time=start_time,
            capacity=config.capacity,
            seed=int(rng.integers(0, 2**31)),
        )
        if config.algorithm == "kinetic":
            agent: VehicleAgent = KineticAgent(
                vehicle,
                engine,
                mode=config.tree_mode,
                hotspot_theta=config.hotspot_theta,
                eager_invalidation=config.eager_invalidation,
                start_time=start_time,
                expansion_budget=config.tree_expansion_budget,
                schedule_cap=config.tree_schedule_cap,
            )
        else:
            algorithm = make_algorithm(config.algorithm, engine)
            agent = RescheduleAgent(vehicle, engine, algorithm)
        agents.append(agent)
    return agents
