"""Event-driven ridesharing simulation (Section VI's framework).

The simulation replays a trip stream in request-time order. Vehicles
cruise when idle and execute committed schedules otherwise; assigned
vehicles re-route on the fly. Dispatch runs through the batched
subsystem (:mod:`repro.dispatch`): with ``batch_window_s == 0`` each
request is flushed the instant it arrives (the paper's immediate
dispatch), otherwise requests accumulate in a
:class:`~repro.dispatch.window.BatchWindow` and each periodic
``BATCH_DISPATCH`` event runs the staged pipeline: the flush snapshots
the batch and *issues* its quote stage (asynchronously on the quote
workers when configured), a ``QUOTE_READY`` event ``quote_overlap_s``
later *collects* the quotes — deterministically re-quoting any column
whose vehicle mutated its schedule in between — and the policy solves
and commits. With ``quote_workers=0`` and a zero overlap the pipeline
degenerates to the old synchronous quote+solve+commit blob, and is
bit-identical to it.

The flush cadence is owned by a window controller
(:mod:`repro.dispatch.adaptive`): each flush asks the controller for
the next window and overlap lengths. The fixed controller echoes the
configured constants (bit-identical to the pre-controller chain); with
``adaptive_window=True`` the window is retuned per flush from the
observed arrival intensity, clamped to the configured band. With
``carry_over=True``, requests that end a flush unassigned but whose
wait budget still reaches the next flush's commit instant re-enter the
window (:class:`~repro.dispatch.policies.CarriedRequest`) instead of
being settled in-batch; their accumulated response-time debt is folded
into the final :class:`~repro.core.matching.AssignmentResult` when a
later flush settles them.

Event causality: committed plans are versioned — when a vehicle is
re-planned (wins a request), its in-flight stop-arrival event becomes
stale and is dropped when popped; the commit schedules a fresh one.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import Dispatcher
from repro.dispatch import BatchDispatcher, BatchWindow, QuoteService, make_policy
from repro.dispatch.adaptive import make_window_controller
from repro.dispatch.policies import GreedyPolicy
from repro.faults import (
    FaultInjector,
    FlushBudget,
    RetryPolicy,
    parse_fault_spec,
    run_with_fault,
)
from repro.obs import (
    LiveTelemetry,
    Tracer,
    clock,
    write_chrome_trace,
    write_metrics_json,
)
from repro.sim.config import SimulationConfig
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.fleet import build_fleet
from repro.sim.metrics import SimulationReport
from repro.sim.workload import TripSpec
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid_index import GridIndex


class Simulation:
    """One configured simulation run over a trip stream."""

    def __init__(
        self,
        engine,
        config: SimulationConfig,
        trips: list[TripSpec],
    ):
        self.engine = engine
        self.config = config
        self.trips = sorted(trips, key=lambda t: t.request_time)
        self.start_time = self.trips[0].request_time if self.trips else 0.0
        self.horizon = self.trips[-1].request_time if self.trips else 0.0

        self.agents = build_fleet(engine, config, start_time=self.start_time)
        self._agents_by_id = {a.vehicle.vehicle_id: a for a in self.agents}

        self.grid_index = None
        if config.use_grid_index and engine.graph.coords is not None:
            coords = engine.graph.coords
            bounds = BoundingBox(
                float(np.min(coords[:, 0])),
                float(np.min(coords[:, 1])),
                float(np.max(coords[:, 0])),
                float(np.max(coords[:, 1])),
            )
            self.grid_index = GridIndex(bounds, cell_meters=config.grid_cell_meters)

        #: The run's span collector (repro.obs). Disabled (the default)
        #: it is a literal no-op; enabled it records the staged flush
        #: pipeline. Telemetry is write-only — nothing below ever reads
        #: it back into a dispatch decision.
        self.tracer = Tracer(enabled=config.trace)
        self._flush_seq = 0

        # The report (and its metrics registry) exists before the
        # dispatch stack so the fault injector can count into it.
        self.report = SimulationReport()
        self.report.tracer = self.tracer

        #: Deterministic fault injection (repro.faults). An empty plan
        #: (the default) makes the injector — and every hardened code
        #: path it gates — a literal no-op: determinism contract 10.
        self.fault_injector = FaultInjector(
            parse_fault_spec(config.fault_spec),
            seed=config.fault_seed,
            registry=self.report.registry,
            tracer=self.tracer,
        )
        self.retry_policy = RetryPolicy(
            max_attempts=config.task_retries + 1,
            timeout_s=config.task_timeout_s,
            backoff_s=config.retry_backoff_s,
            backoff_cap_s=config.retry_backoff_cap_s,
        )
        #: The degradation ladder's last rung: a flush that exhausts its
        #: deadline budget is dispatched greedily (sequential
        #: cheapest-quote, no batch solve), unhardened by design.
        self._fallback_policy = GreedyPolicy()

        self.dispatcher = Dispatcher(
            engine,
            self.agents,
            grid_index=self.grid_index,
            staleness_seconds=config.report_interval,
            objective=config.objective,
        )
        self.dispatcher.tracer = self.tracer
        try:
            # Engine fan-out spans (Dijkstra row-cache sweeps). Shared
            # engines (bench contexts) simply follow the latest run's
            # tracer; a disabled tracer silences them again.
            engine.tracer = self.tracer
        except AttributeError:
            pass
        self.batch_dispatcher = BatchDispatcher(
            self.dispatcher,
            make_policy(
                config.dispatch_policy,
                config.assignment_rounds,
                num_shards=config.num_shards,
                shard_backend=config.shard_backend,
                shard_boundary_cells=config.shard_boundary_cells,
                shard_zero_copy=config.shard_zero_copy,
                shard_persistent_workers=config.shard_persistent_workers,
                injector=self.fault_injector,
                retry=self.retry_policy,
            ),
        )
        self.batch_window = (
            BatchWindow(config.batch_window_s)
            if config.batch_window_s > 0
            else None
        )
        #: Owns the flush cadence: fixed (config constants, bit-identical
        #: to the pre-controller chain) or adaptive (per-flush retune).
        self.window_controller = make_window_controller(config)
        self._arrivals_since_flush = 0
        #: Carry-over debt: request_id -> (elapsed, quote_timings,
        #: times_carried) accumulated over the flushes a request lost,
        #: folded into its final AssignmentResult at settle.
        self._carry_debt: dict[int, tuple[float, list, int]] = {}
        self.quote_service = QuoteService(
            workers=config.quote_workers,
            backend=config.quote_backend,
            tracer=self.tracer,
            injector=self.fault_injector,
            retry=self.retry_policy,
        )
        #: Live-ops layer (repro.obs.live): sim-time windowed time
        #: series, SLO engine and resource monitor. ``None`` (the
        #: default) keeps the event loop's fast path untouched; enabled
        #: it is still write-only — determinism contract 9 extends to
        #: it (tests/sim/test_live_telemetry.py).
        self.live = LiveTelemetry.from_config(
            config,
            self.report.registry,
            self.start_time,
            depth_probes=(self.quote_service.queue_depth,),
        )

    # ------------------------------------------------------------------
    def _install_engine_faults(self) -> bool:
        """Shadow ``engine.distance_many`` with a fault-drawing wrapper
        (instance attribute — the class stays untouched). Draws only
        happen inside an open engine window (quote computation); the
        greedy fallback and commit paths never open one, so the ladder's
        last rung stays fault-immune. Returns whether a wrapper was
        installed (the caller must restore it — engines are shared
        across runs in bench/test contexts)."""
        injector = self.fault_injector
        if not injector.wants("engine.distance_many"):
            return False
        original = self.engine.distance_many

        def distance_many_with_faults(source, targets):
            fault, sleeping = injector.draw_engine()
            if fault is not None:
                return run_with_fault(fault, sleeping, None, original, source, targets)
            return original(source, targets)

        self.engine.distance_many = distance_many_with_faults
        return True

    def run(self) -> SimulationReport:
        """Process every event; returns the aggregated report."""
        engine_faults = self._install_engine_faults()
        try:
            return self._run()
        finally:
            if engine_faults:
                del self.engine.distance_many

    def _run(self) -> SimulationReport:
        started = clock()
        queue = EventQueue()
        for spec in self.trips:
            queue.push(Event(spec.request_time, EventKind.REQUEST_ARRIVAL, spec))
        if self.grid_index is not None:
            for agent in self.agents:
                self._report_location(agent, self.start_time)
                queue.push(
                    Event(
                        self.start_time + self.config.report_interval,
                        EventKind.LOCATION_REPORT,
                        agent.vehicle.vehicle_id,
                    )
                )

        if self.batch_window is not None and self.trips:
            queue.push(
                Event(
                    self.start_time + self.config.batch_window_s,
                    EventKind.BATCH_DISPATCH,
                )
            )

        live = self.live
        while True:
            while queue:
                event = queue.pop()
                if live is not None:
                    # Close any sim-time telemetry windows this event's
                    # timestamp completes (the event's own samples then
                    # land in the next window). Read-and-report only:
                    # nothing the live layer does feeds back into
                    # dispatch, so enabling it stays bit-identical.
                    live.advance(event.time)
                if event.kind is EventKind.REQUEST_ARRIVAL:
                    self._handle_request(event.payload, event.time, queue)
                elif event.kind is EventKind.STOP_REACHED:
                    self._handle_stop(event.payload, event.time, queue)
                elif event.kind is EventKind.BATCH_DISPATCH:
                    self._handle_batch_flush(event.time, queue)
                elif event.kind is EventKind.QUOTE_READY:
                    self._handle_quote_ready(event.payload, event.time, queue)
                else:
                    self._handle_report(event.payload, event.time, queue)
            if self.batch_window is not None and self.batch_window:
                # Safety net: flush the final partial window so tail
                # requests are never silently dropped, whatever ended
                # the periodic flush chain. Committing schedules new
                # stop events, so loop back to drain them.
                self._dispatch_batch(
                    self.batch_window.flush(),
                    max(queue.current_time, self.start_time),
                    queue,
                )
                continue
            break

        if live is not None:
            # Final partial window + JSONL flush + SLO verdict, while
            # the quote pool still exists for the last depth sample.
            slo_document = live.finish(
                max(queue.current_time, self.start_time)
            )
            if slo_document is not None:
                self.report.extra["slo"] = slo_document
            self.report.extra["timeseries"] = {
                "windows": len(live.recorder.rows),
                "path": self.config.timeseries_out,
            }
        self.quote_service.close()
        # The sharded policy owns worker processes and (zero-copy)
        # shared-memory segments; release both at the end of the run —
        # GC-time __del__ teardown stays as the backstop, not the plan.
        policy_close = getattr(self.batch_dispatcher.policy, "close", None)
        if policy_close is not None:
            policy_close()
        self.report.wall_seconds = clock() - started
        self.report.extra["engine_stats"] = getattr(
            self.engine, "stats", lambda: {}
        )()
        if self.grid_index is not None:
            self.report.extra["grid_stats"] = self.grid_index.stats()
        if self.config.trace_out:
            write_chrome_trace(self.tracer.records(), self.config.trace_out)
        if self.config.metrics_out:
            write_metrics_json(
                self.report.registry,
                self.config.metrics_out,
                extra=self.report.summary(),
            )
        return self.report

    # ------------------------------------------------------------------
    def _handle_request(self, spec: TripSpec, now: float, queue: EventQueue) -> None:
        request = self.dispatcher.make_request(
            spec.origin,
            spec.destination,
            now,
            self.config.constraints.max_wait_seconds,
            self.config.constraints.detour_epsilon,
        )
        if request is None:
            return
        if self.batch_window is None:
            self._dispatch_batch([request], now, queue)
        else:
            self.batch_window.add(request)
            self._arrivals_since_flush += 1

    def _handle_batch_flush(self, now: float, queue: EventQueue) -> None:
        """Periodic ``BATCH_DISPATCH``: retune the window controller on
        the flush-to-flush arrival count, snapshot the window's
        accumulated requests and *issue* their quote stage; the matching
        ``QUOTE_READY`` event one (possibly retuned) overlap later
        solves and commits. Then schedule the next flush — the chain
        runs until the first flush at or after the last request arrival
        (same flush instants as the old ``next <= horizon + window``
        rule, but immune to float accumulation stopping the chain one
        window early and stranding tail requests)."""
        controller = self.window_controller
        flush_id = self._flush_seq
        self._flush_seq += 1
        with self.tracer.span(
            "flush.issue", flush=flush_id, sim_now=round(now, 3)
        ) as issue_span:
            controller.on_flush(now, self._arrivals_since_flush)
            self._arrivals_since_flush = 0
            self.batch_window.window_s = controller.window_s
            self.report.record_window(
                now, controller.window_s, controller.overlap_s
            )
            next_flush = now + controller.window_s if now < self.horizon else None
            with self.tracer.span("snapshot", flush=flush_id):
                requests = self.batch_window.flush()
            issue_span.annotate(requests=len(requests))
            if requests:
                commit_time = now + controller.overlap_s
                # Carry bound: a carried request must still be assignable at
                # the *next* flush's commit. That commit's overlap is only
                # retuned at the next flush, so the current overlap stands
                # in — deterministically; a request carried on a slightly
                # stale bound just takes the normal rejection path there.
                carry_deadline = None
                if self.config.carry_over and next_flush is not None:
                    carry_deadline = next_flush + controller.overlap_s
                # Fault-carry bound: same instant, but armed whenever a
                # next flush exists — the ladder's carry rescue must work
                # even with carry-over batching disabled.
                fault_deadline = (
                    next_flush + controller.overlap_s
                    if next_flush is not None
                    else None
                )
                budget = (
                    FlushBudget(self.config.flush_deadline_s)
                    if self.config.flush_deadline_s is not None
                    else None
                )
                pending = None
                if self.batch_dispatcher.policy.uses_quote_set:
                    # Quote stage: candidate filtering and decision points
                    # resolve here; with quote workers the column quotes
                    # start computing while we return to executing events.
                    with self.tracer.span(
                        "quote.issue",
                        cat="quote",
                        flush=flush_id,
                        requests=len(requests),
                    ):
                        pending = self.quote_service.begin(
                            self.dispatcher,
                            requests,
                            commit_time,
                            budget=budget,
                        )
                queue.push(
                    Event(
                        commit_time,
                        EventKind.QUOTE_READY,
                        (
                            requests,
                            pending,
                            carry_deadline,
                            fault_deadline,
                            flush_id,
                        ),
                    )
                )
        if next_flush is not None:
            queue.push(Event(next_flush, EventKind.BATCH_DISPATCH))

    def _handle_quote_ready(self, payload, now: float, queue: EventQueue) -> None:
        """Commit stage: collect the flush's quotes (re-quoting stale
        columns), then solve and commit through the policy — all under
        the flush's main ``flush`` span (its ``flush`` arg links it to
        the issuing ``flush.issue`` span)."""
        requests, pending, carry_deadline, fault_deadline, flush_id = payload
        wall_start = clock()
        with self.tracer.span(
            "flush", flush=flush_id, requests=len(requests), sim_now=round(now, 3)
        ):
            quote_set = None
            degraded = False
            if pending is not None:
                collect_start = clock()
                with self.tracer.span(
                    "quote.collect", cat="quote", flush=flush_id
                ) as collect_span:
                    quote_set = pending.collect()
                collect_span.annotate(requotes=quote_set.requotes)
                # Quote wall time that ran while this thread was still
                # executing events: the stage's span — counted from the end
                # of the issue prologue, which ran inline in the flush
                # handler — clipped at the moment we came back to collect
                # it. Inline stages (deferred mode, eager serial backend)
                # blocked this thread throughout, so nothing overlapped by
                # construction.
                overlapped = (
                    0.0
                    if quote_set.inline
                    else max(
                        0.0,
                        min(quote_set.finished_perf, collect_start)
                        - quote_set.issued_perf,
                    )
                )
                self.report.record_quote_stage(quote_set, overlapped)
                self.window_controller.observe_quote_stage(quote_set.quote_seconds)
                if quote_set.deadline_exceeded:
                    # Ladder's last rung: the flush blew its deadline
                    # budget mid-quote. Drop the partial quote set and
                    # dispatch this one flush greedily — the next flush
                    # starts a fresh budget and recovers the full
                    # pipeline.
                    degraded = True
                    quote_set = None
                    self.report.record_flush_degraded()
            self._dispatch_batch(
                requests,
                now,
                queue,
                quote_set=quote_set,
                carry_deadline=carry_deadline,
                fault_deadline=fault_deadline,
                degraded=degraded,
                in_flush=True,
            )
        self.report.record_flush_wall(clock() - wall_start)

    def _dispatch_batch(
        self,
        requests,
        now: float,
        queue: EventQueue,
        quote_set=None,
        carry_deadline: float | None = None,
        fault_deadline: float | None = None,
        degraded: bool = False,
        in_flush: bool = False,
    ) -> None:
        """Assign one batch and fold the outcome into the report; each
        winning vehicle gets exactly one fresh stop event (its final
        post-batch plan), and one location report. Carried requests
        (carry-over batching) re-enter the window for the next flush,
        accumulating their response-time debt until a later flush
        settles them; ``carry_deadline=None`` (immediate dispatch, the
        end-of-run safety net, final flushes) settles everything here.
        ``in_flush=True`` (the pipelined path) means the caller already
        opened the flush span and owns the flush wall-time sample.
        ``degraded=True`` is the ladder's last rung: dispatch through
        the greedy fallback policy for this flush only."""
        if in_flush:
            self._commit_batch(
                requests, now, queue, quote_set, carry_deadline,
                fault_deadline=fault_deadline, degraded=degraded,
            )
            return
        wall_start = clock()
        with self.tracer.span(
            "flush", requests=len(requests), sim_now=round(now, 3)
        ):
            self._commit_batch(
                requests, now, queue, quote_set, carry_deadline,
                fault_deadline=fault_deadline, degraded=degraded,
            )
        self.report.record_flush_wall(clock() - wall_start)

    def _commit_batch(
        self,
        requests,
        now,
        queue,
        quote_set,
        carry_deadline,
        fault_deadline=None,
        degraded=False,
    ) -> None:
        if degraded:
            # Greedy downgrade: sequential cheapest-quote dispatch, no
            # batch solve, no quote workers, no fault hardening — the
            # one rung guaranteed not to consume any failed machinery.
            batch = self._fallback_policy.assign(
                self.dispatcher,
                list(requests),
                now,
                carry_deadline=carry_deadline,
            )
        else:
            batch = self.batch_dispatcher.dispatch(
                requests,
                now,
                quote_set=quote_set,
                carry_deadline=carry_deadline,
                fault_deadline=fault_deadline,
            )
        self.report.record_batch(batch)
        if batch.carried:
            for item in batch.carried:
                rid = item.request.request_id
                elapsed, timings, times = self._carry_debt.pop(
                    rid, (0.0, [], 0)
                )
                self._carry_debt[rid] = (
                    elapsed + item.elapsed,
                    timings + item.quote_timings,
                    times + 1,
                )
                if item.fault_rescued:
                    self.report.record_fault_rescue()
                self.report.record_carry(now - item.request.request_time)
            self.batch_window.carry(item.request for item in batch.carried)
        winners: dict[int, object] = {}
        for result in batch.results:
            debt = self._carry_debt.pop(result.request.request_id, None)
            if debt is not None:
                elapsed, timings, times = debt
                result.elapsed += elapsed
                result.quote_timings = timings + result.quote_timings
                self.report.record_carry_settle(times)
            self.report.record_assignment(result)
            if result.assigned:
                self.report.record_assign_latency(
                    now - result.request.request_time
                )
                self.report.service_log[result.request.request_id] = {
                    "request": result.request,
                    "vehicle": result.winner.vehicle.vehicle_id,
                    "assigned_cost": result.cost,
                    "assigned_at": now,
                }
                winners[result.winner.vehicle.vehicle_id] = result.winner
        for agent in winners.values():
            self._schedule_next_stop(agent, queue)
            if self.grid_index is not None:
                self._report_location(agent, now)

    def _handle_stop(self, payload, now: float, queue: EventQueue) -> None:
        vehicle_id, plan_version = payload
        agent = self._agents_by_id[vehicle_id]
        if agent.vehicle.plan_version != plan_version:
            return  # stale: the vehicle re-planned since this was scheduled
        serviced = agent.arrive_next()
        for arrival, stop in serviced:
            entry = self.report.service_log.setdefault(stop.request_id, {})
            request = entry.get("request")
            if request is not None:
                # Live guarantee counters (pickup.late / detour
                # violations) — read the pickup stamp before this
                # stop's own entry lands.
                self.report.record_stop_service(
                    request, stop.is_pickup, arrival, pickup=entry.get("pickup")
                )
            entry["pickup" if stop.is_pickup else "dropoff"] = arrival
        self.report.occupancy.observe(vehicle_id, agent.load)
        if self.grid_index is not None:
            self._report_location(agent, now)
        if agent.next_stop() is not None:
            self._schedule_next_stop(agent, queue)
        else:
            last_arrival, last_stop = serviced[-1]
            agent.vehicle.set_idle(last_stop.vertex, last_arrival)

    def _handle_report(self, vehicle_id: int, now: float, queue: EventQueue) -> None:
        agent = self._agents_by_id[vehicle_id]
        self._report_location(agent, now)
        next_time = now + self.config.report_interval
        if next_time <= self.horizon:
            queue.push(Event(next_time, EventKind.LOCATION_REPORT, vehicle_id))

    def _schedule_next_stop(self, agent, queue: EventQueue) -> None:
        upcoming = agent.next_stop()
        if upcoming is None:
            return
        arrival, _stops = upcoming
        queue.push(
            Event(
                arrival,
                EventKind.STOP_REACHED,
                (agent.vehicle.vehicle_id, agent.vehicle.plan_version),
            )
        )

    def _report_location(self, agent, now: float) -> None:
        x, y = agent.vehicle.position_at(now, self.engine.graph)
        self.grid_index.update(agent.vehicle.vehicle_id, x, y)


def simulate(engine, config: SimulationConfig, trips: list[TripSpec]) -> SimulationReport:
    """Convenience one-shot: build and run a :class:`Simulation`."""
    return Simulation(engine, config, trips).run()
