"""Event-driven simulation framework (Section VI of the paper)."""

from repro.sim.config import SimulationConfig
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.fleet import build_fleet
from repro.sim.metrics import (
    ARTCollector,
    OccupancyTracker,
    RunningStats,
    SimulationReport,
)
from repro.sim.simulator import Simulation, simulate
from repro.sim.workload import (
    PAPER_TRIPS_PER_VEHICLE_HOUR,
    ShanghaiLikeWorkload,
    TripSpec,
    burst_workload,
)

__all__ = [
    "SimulationConfig",
    "Event",
    "EventKind",
    "EventQueue",
    "build_fleet",
    "Simulation",
    "simulate",
    "SimulationReport",
    "RunningStats",
    "ARTCollector",
    "OccupancyTracker",
    "ShanghaiLikeWorkload",
    "TripSpec",
    "burst_workload",
    "PAPER_TRIPS_PER_VEHICLE_HOUR",
]
