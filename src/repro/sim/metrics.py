"""Measurement: ACRT, ART buckets, occupancy and service statistics.

Paper definitions (Section VI):

* **ACRT** — average customer response time: "the average time required
  to complete the search for the minimum time needed to satisfy a new
  request" (one sample per request, across all candidate vehicles);
* **ART** — average response time: "the average time needed to calculate
  the best route for a taxi to follow given its current state, for
  different request sizes" (one sample per (vehicle, request) quote,
  bucketed by the vehicle's current number of active requests).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from statistics import mean

from repro.obs.metrics import MetricsRegistry


def _fmt_stat(value: float | None, spec: str = ".3f") -> str:
    """Render a possibly-``None`` statistic (empty collector) as ``—``."""
    return "—" if value is None else format(value, spec)


class RunningStats:
    """Streaming mean/min/max/count without storing samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float | None]:
        """Summary dict; ``min``/``max`` are ``None`` (JSON ``null``)
        when no sample was recorded — a real 0.0 sample stays 0.0."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class ARTCollector:
    """Per-quote compute times, bucketed by active-request count."""

    def __init__(self):
        self.buckets: dict[int, RunningStats] = defaultdict(RunningStats)

    def record(self, active_trips: int, seconds: float) -> None:
        self.buckets[active_trips].add(seconds)

    def mean_for(self, active_trips: int) -> float | None:
        """Mean ART (seconds) for a bucket, or ``None`` if unobserved."""
        stats = self.buckets.get(active_trips)
        return stats.mean if stats else None

    def as_dict(self) -> dict[int, dict[str, float]]:
        return {k: v.as_dict() for k, v in sorted(self.buckets.items())}


class OccupancyTracker:
    """Per-vehicle occupancy statistics (Section VI.B closing numbers:
    max passengers, fleet average, top-20%-filled average)."""

    def __init__(self):
        self._max_by_vehicle: dict[int, int] = defaultdict(int)
        self._sample_sum = 0.0
        self._sample_count = 0

    def observe(self, vehicle_id: int, load: int) -> None:
        """Record a vehicle's load at a stop event."""
        if load > self._max_by_vehicle[vehicle_id]:
            self._max_by_vehicle[vehicle_id] = load
        self._sample_sum += load
        self._sample_count += 1

    @property
    def max_passengers(self) -> int:
        """Largest simultaneous passenger count seen on any vehicle."""
        return max(self._max_by_vehicle.values(), default=0)

    @property
    def mean_max_per_vehicle(self) -> float:
        """Average over vehicles of their own maximum occupancy."""
        if not self._max_by_vehicle:
            return 0.0
        return mean(self._max_by_vehicle.values())

    @property
    def top20_mean(self) -> float:
        """Mean max-occupancy of the top 20% most filled vehicles."""
        if not self._max_by_vehicle:
            return 0.0
        values = sorted(self._max_by_vehicle.values(), reverse=True)
        top = values[: max(1, len(values) // 5)]
        return mean(top)

    @property
    def mean_load_at_stops(self) -> float:
        """Average load over all stop events (ride-pooling intensity)."""
        if not self._sample_count:
            return 0.0
        return self._sample_sum / self._sample_count


@dataclass
class SimulationReport:
    """Aggregated outcome of one simulation run."""

    num_requests: int = 0
    num_assigned: int = 0
    num_rejected: int = 0
    acrt: RunningStats = field(default_factory=RunningStats)
    art: ARTCollector = field(default_factory=ARTCollector)
    occupancy: OccupancyTracker = field(default_factory=OccupancyTracker)
    total_assignment_cost: float = 0.0
    candidate_counts: RunningStats = field(default_factory=RunningStats)
    #: Batched dispatch (repro.dispatch): requests per flush, wall time
    #: inside the assignment solver per flush, rejections per flush.
    #: Immediate dispatch records each request as a singleton batch.
    num_batches: int = 0
    batch_sizes: RunningStats = field(default_factory=RunningStats)
    solver_seconds: RunningStats = field(default_factory=RunningStats)
    batch_rejections: RunningStats = field(default_factory=RunningStats)
    #: Sharded dispatch (repro.dispatch.sharding): requests per solved
    #: shard, in-worker solve seconds per shard, and boundary conflicts
    #: (vehicles claimed by several shards) per flush. Empty unless the
    #: ``sharded`` policy ran.
    shard_sizes: RunningStats = field(default_factory=RunningStats)
    shard_solve_seconds: RunningStats = field(default_factory=RunningStats)
    boundary_conflicts: RunningStats = field(default_factory=RunningStats)
    #: Flushes whose shard plan silently degenerated to one global shard
    #: (no grid index / no coordinates) despite more being requested.
    shard_fallbacks: int = 0
    #: Adaptive batching (repro.dispatch.adaptive): per-flush window and
    #: overlap lengths as scheduled by the window controller, plus the
    #: full trajectory (flush time, window_s, overlap_s) — the record
    #: BENCH_adaptive.json tracks. Populated for every batched run (the
    #: fixed controller's trajectory is constant).
    window_s_stats: RunningStats = field(default_factory=RunningStats)
    window_trajectory: list = field(default_factory=list)
    #: Carry-over batching: carried requests per flush (0 when disabled),
    #: request age in seconds at each carry event, total carry events,
    #: and the most flushes any single request rode along.
    carried_per_flush: RunningStats = field(default_factory=RunningStats)
    carry_age_s: RunningStats = field(default_factory=RunningStats)
    carry_events: int = 0
    max_carries: int = 0
    #: Request-to-assignment latency (commit time minus request time) per
    #: assigned request; 0 under immediate dispatch, and the metric the
    #: adaptive window shortens off-peak.
    assign_latency_s: RunningStats = field(default_factory=RunningStats)
    #: Staged quote pipeline (repro.dispatch.quoting): per-flush quote
    #: stage wall time, stale columns re-quoted at commit, and the
    #: fraction of quote wall time that overlapped event execution
    #: (async quoting's payoff; 0 for the synchronous/deferred stage).
    #: Empty unless batched dispatch ran through the pipeline.
    quote_seconds: RunningStats = field(default_factory=RunningStats)
    staleness_requotes: RunningStats = field(default_factory=RunningStats)
    overlap_ratio: RunningStats = field(default_factory=RunningStats)
    #: Columns whose async worker quote raised because a schedule
    #: mutation raced it (always repaired by a re-quote; a correctness
    #: counter, not an error count).
    quote_failures: int = 0
    #: Fault tolerance (repro.faults): the degradation ladder's rungs.
    #: Quote columns that exhausted their retry budget and were
    #: assembled failed (their rows became fault-carry candidates).
    quote_columns_failed: int = 0
    #: Shards re-solved serially in the parent after their fan-out task
    #: exhausted its retry budget.
    shard_serial_rescues: int = 0
    #: Flushes downgraded to the greedy policy after blowing their
    #: deadline budget (the ladder's last rung).
    flushes_degraded: int = 0
    #: Requests carried to the next flush because their quote column(s)
    #: failed (the fault-carry rescue, not ordinary carry-over).
    fault_rescued_carries: int = 0
    wall_seconds: float = 0.0
    #: The run's metrics registry (repro.obs): every record_* method
    #: below mirrors its samples into named streaming histograms here,
    #: which is where p50/p90/p99 come from (RunningStats keeps only
    #: mean/min/max) and what ``metrics_out`` serializes.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: The run's span collector (a :class:`repro.obs.Tracer`, attached
    #: by :class:`~repro.sim.simulator.Simulation`; ``None`` for
    #: hand-built reports). ``report.tracer.records()`` is what the
    #: trace exporters and the bench stage breakdown read.
    tracer: object | None = None
    #: request_id -> {"request", "vehicle", "assigned_cost", "pickup",
    #: "dropoff"} — everything needed to audit the service guarantee.
    service_log: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    #: Counters documented in ``docs/robustness.md``; pre-registered at
    #: report creation so the exported registry always carries them
    #: (zero included) and docs/export can't drift — asserted by
    #: ``tests/obs/test_metrics_naming.py``.
    DOCUMENTED_COUNTERS = (
        "fault.injected",
        "retry.count",
        "pool.recreated",
        "quote.column_failed",
        "carry.fault_rescued",
        "shard.serial_rescue",
        "flush.degraded",
    )
    #: Request/stop outcome counters the live layer and the SLO engine
    #: window (``docs/observability.md``); pre-registered likewise.
    SERVICE_COUNTERS = (
        "requests.settled",
        "requests.assigned",
        "requests.rejected",
        "pickup.count",
        "pickup.late",
        "dropoff.count",
        "dropoff.detour_violation",
    )
    #: Zero-copy shard fan-out counters (``docs/architecture.md``):
    #: payload bytes published into the shared-memory arena per flush
    #: and worker-side attach-cache hits. Pre-registered likewise (the
    #: companion ``shm.attach_s`` histogram appears on first
    #: observation, as histograms do).
    SHM_COUNTERS = (
        "shm.bytes_shared",
        "worker.reuse",
    )

    def __post_init__(self):
        for name in (
            self.DOCUMENTED_COUNTERS
            + self.SERVICE_COUNTERS
            + self.SHM_COUNTERS
        ):
            self.registry.counter(name)

    @property
    def service_rate(self) -> float:
        """Fraction of requests assigned to a vehicle."""
        if not self.num_requests:
            return 0.0
        return self.num_assigned / self.num_requests

    @property
    def acrt_ms(self) -> float:
        """Mean ACRT in milliseconds (the paper's reporting unit)."""
        return self.acrt.mean * 1000.0

    def art_ms(self, active_trips: int) -> float | None:
        """Mean ART in milliseconds for one bucket."""
        value = self.art.mean_for(active_trips)
        return None if value is None else value * 1000.0

    def record_assignment(self, result) -> None:
        """Fold one :class:`~repro.core.matching.AssignmentResult` in."""
        self.num_requests += 1
        self.acrt.add(result.elapsed)
        self.registry.histogram("dispatch.acrt_s").add(result.elapsed)
        self.candidate_counts.add(result.num_candidates)
        art_hist = self.registry.histogram("quote.art_s")
        for active, seconds in result.quote_timings:
            self.art.record(active, seconds)
            art_hist.add(seconds)
        self.registry.counter("requests.settled").inc()
        if result.assigned:
            self.num_assigned += 1
            self.total_assignment_cost += result.cost
            self.registry.counter("requests.assigned").inc()
        else:
            self.num_rejected += 1
            self.registry.counter("requests.rejected").inc()

    def record_batch(self, batch) -> None:
        """Fold one :class:`~repro.dispatch.policies.BatchResult` in
        (empty flushes are not recorded). Batch size counts every
        request the flush handled — settled and carried alike."""
        size = batch.batch_size + len(batch.carried)
        if size == 0:
            return
        self.num_batches += 1
        self.batch_sizes.add(size)
        self.registry.histogram("flush.batch_size", unit="requests").add(size)
        self.solver_seconds.add(batch.solver_seconds)
        self.registry.histogram("flush.solve_s").add(batch.solver_seconds)
        self.batch_rejections.add(batch.num_rejected)
        self.carried_per_flush.add(len(batch.carried))
        for shard_size in batch.shard_sizes:
            self.shard_sizes.add(shard_size)
        shard_hist = self.registry.histogram("shard.solve_s")
        for seconds in batch.shard_solve_seconds:
            self.shard_solve_seconds.add(seconds)
            shard_hist.add(seconds)
        if batch.shard_sizes:
            self.boundary_conflicts.add(batch.boundary_conflicts)
        self.shard_fallbacks += batch.shard_fallbacks
        rescues = getattr(batch, "shard_serial_rescues", 0)
        if rescues:
            self.shard_serial_rescues += rescues
            self.registry.counter("shard.serial_rescue").inc(rescues)

    def record_window(self, now: float, window_s: float, overlap_s: float) -> None:
        """Record one flush's scheduled window/overlap lengths (the
        window controller's output at that flush)."""
        self.window_s_stats.add(window_s)
        self.window_trajectory.append((now, window_s, overlap_s))

    def record_carry(self, age_seconds: float) -> None:
        """Record one carry event (a request re-entering the window);
        ``age_seconds`` is how long the request had been waiting."""
        self.carry_events += 1
        self.carry_age_s.add(age_seconds)

    def record_carry_settle(self, times_carried: int) -> None:
        """Record a carried request finally settling (assigned or
        rejected) after riding along ``times_carried`` flushes."""
        if times_carried > self.max_carries:
            self.max_carries = times_carried

    def record_assign_latency(self, seconds: float) -> None:
        """Record one assigned request's request-to-commit latency (the
        batching delay the adaptive window trades against batch size)."""
        self.assign_latency_s.add(seconds)
        self.registry.histogram("assign.latency_s").add(seconds)

    def record_flush_degraded(self) -> None:
        """Record one flush downgrading to the greedy policy (the
        degradation ladder's last rung: its deadline budget tripped)."""
        self.flushes_degraded += 1
        self.registry.counter("flush.degraded").inc()

    def record_fault_rescue(self) -> None:
        """Record one request carried to the next flush because its
        quote column(s) failed — the ladder's fault-carry rescue."""
        self.fault_rescued_carries += 1
        self.registry.counter("carry.fault_rescued").inc()

    def record_flush_wall(self, seconds: float) -> None:
        """Record one flush's total wall time (quote + solve + commit +
        bookkeeping as seen by the simulator)."""
        self.registry.histogram("flush.total_s").add(seconds)

    def record_quote_stage(self, quote_set, overlap_seconds: float) -> None:
        """Fold one flush's completed quote stage in
        (:class:`~repro.dispatch.quoting.QuoteSet` plus how much of its
        wall time ran concurrently with event execution)."""
        self.quote_seconds.add(quote_set.quote_seconds)
        self.registry.histogram("flush.quote_s").add(quote_set.quote_seconds)
        self.staleness_requotes.add(quote_set.requotes)
        self.quote_failures += quote_set.failures
        failed = len(getattr(quote_set, "failed_columns", ()))
        if failed:
            self.quote_columns_failed += failed
            self.registry.counter("quote.column_failed").inc(failed)
        if quote_set.quote_seconds > 0:
            self.overlap_ratio.add(
                min(1.0, max(0.0, overlap_seconds / quote_set.quote_seconds))
            )

    def record_stop_service(
        self,
        request,
        is_pickup: bool,
        arrival: float,
        pickup: float | None = None,
        tolerance: float = 1e-5,
    ) -> None:
        """Count one serviced stop against the guarantee, live — the
        same Definition 2 checks :meth:`verify_service_guarantees` runs
        at end of run (same tolerance), folded into counters as each
        stop happens so the SLO engine can window wait-deadline and
        detour compliance. ``pickup`` is the rider's pickup time (only
        consulted for dropoffs)."""
        if is_pickup:
            self.registry.counter("pickup.count").inc()
            if arrival > request.pickup_deadline + tolerance:
                self.registry.counter("pickup.late").inc()
        else:
            self.registry.counter("dropoff.count").inc()
            if (
                pickup is not None
                and arrival - pickup > request.max_ride_cost + tolerance
            ):
                self.registry.counter("dropoff.detour_violation").inc()

    def verify_service_guarantees(self, tolerance: float = 1e-5) -> list[str]:
        """Audit the service log against Definition 2: every assigned
        rider picked up by ``request_time + w`` and carried within
        ``(1 + eps) d(s, e)``. Returns violation descriptions (empty =
        all guarantees held). Requests whose service was still in flight
        when the simulation ended are only checked for what happened.
        """
        violations: list[str] = []
        for rid, entry in self.service_log.items():
            request = entry.get("request")
            if request is None:
                continue
            picked = entry.get("pickup")
            dropped = entry.get("dropoff")
            if picked is not None and picked > request.pickup_deadline + tolerance:
                violations.append(
                    f"request {rid}: picked up at {picked:.1f} after "
                    f"deadline {request.pickup_deadline:.1f}"
                )
            if picked is not None and dropped is not None:
                ride = dropped - picked
                if ride > request.max_ride_cost + tolerance:
                    violations.append(
                        f"request {rid}: ride cost {ride:.1f} exceeds "
                        f"(1+eps)d = {request.max_ride_cost:.1f}"
                    )
        return violations

    def summary(self) -> dict[str, float]:
        """Flat dict for tables and EXPERIMENTS.md."""
        latency = self.registry.histogram("assign.latency_s")
        solve = self.registry.histogram("flush.solve_s")
        summary = {
            "requests": self.num_requests,
            "assigned": self.num_assigned,
            "rejected": self.num_rejected,
            "service_rate": round(self.service_rate, 4),
            "acrt_ms": round(self.acrt_ms, 4),
            "mean_candidates": round(self.candidate_counts.mean, 2),
            "max_passengers": self.occupancy.max_passengers,
            "mean_max_occupancy": round(self.occupancy.mean_max_per_vehicle, 3),
            "top20_mean_occupancy": round(self.occupancy.top20_mean, 3),
            "batches": self.num_batches,
            "mean_batch_size": round(self.batch_sizes.mean, 2),
            "max_batch_size": int(self.batch_sizes.max) if self.num_batches else 0,
            "solver_ms_mean": round(self.solver_seconds.mean * 1000.0, 4),
            "mean_batch_rejected": round(self.batch_rejections.mean, 3),
            "shards_solved": self.shard_sizes.count,
            "mean_shard_size": round(self.shard_sizes.mean, 2),
            "shard_solve_ms_mean": round(self.shard_solve_seconds.mean * 1000.0, 4),
            "boundary_conflicts": int(self.boundary_conflicts.total),
            "shard_fallbacks": self.shard_fallbacks,
            "window_s_mean": round(self.window_s_stats.mean, 4),
            "window_s_min": round(
                self.window_s_stats.min if self.window_s_stats.count else 0.0, 4
            ),
            "window_s_max": round(
                self.window_s_stats.max if self.window_s_stats.count else 0.0, 4
            ),
            "assign_latency_s_mean": round(self.assign_latency_s.mean, 4),
            "assign_latency_s_p50": round(latency.quantile(0.50) or 0.0, 4),
            "assign_latency_s_p99": round(latency.quantile(0.99) or 0.0, 4),
            "solver_ms_p99": round((solve.quantile(0.99) or 0.0) * 1000.0, 4),
            "carry_events": self.carry_events,
            "carried_per_flush_mean": round(self.carried_per_flush.mean, 3),
            "carry_age_s_mean": round(self.carry_age_s.mean, 3),
            "max_carries": self.max_carries,
            "pipeline_flushes": self.quote_seconds.count,
            "quote_ms_mean": round(self.quote_seconds.mean * 1000.0, 4),
            "staleness_requotes": int(self.staleness_requotes.total),
            "quote_failures": self.quote_failures,
            "overlap_ratio_mean": round(self.overlap_ratio.mean, 4),
            "faults_injected": self.registry.counter("fault.injected").value,
            "retries": self.registry.counter("retry.count").value,
            "pool_recreations": self.registry.counter("pool.recreated").value,
            "quote_columns_failed": self.quote_columns_failed,
            "shard_serial_rescues": self.shard_serial_rescues,
            "flushes_degraded": self.flushes_degraded,
            "fault_rescued_carries": self.fault_rescued_carries,
            "wall_seconds": round(self.wall_seconds, 3),
        }
        slo = self.extra.get("slo")
        if slo is not None:
            summary["slo_pass"] = bool(slo["pass"])
            summary["slo_windows"] = slo["num_windows"]
            summary["slo_alert_windows"] = slo["alert_windows"]
            summary["slo_objectives_failed"] = sum(
                1
                for objective in slo["objectives"]
                if objective["overall_pass"] is False
            )
        return summary

    def text_summary(self) -> str:
        """Human-readable report block: service/latency numbers plus the
        batching section (batch sizes, solver wall time, rejections per
        flush) when any batches were recorded. Immediate dispatch
        (``batch_window_s=0``) counts each request as a singleton batch,
        so the section then shows mean size 1.0 and zero solver time."""
        summary = self.summary()
        lines = ["--- simulation report ---"]
        for key in (
            "requests",
            "assigned",
            "rejected",
            "service_rate",
            "acrt_ms",
            "mean_candidates",
            "max_passengers",
            "wall_seconds",
        ):
            lines.append(f"{key:24s} {summary[key]}")
        if self.num_batches:
            lines.append("--- batched dispatch ---")
            lines.append(f"{'batches':24s} {self.num_batches}")
            lines.append(
                f"{'batch_size':24s} mean {self.batch_sizes.mean:.2f} "
                f"max {int(self.batch_sizes.max)}"
            )
            lines.append(
                f"{'solver_ms':24s} mean {self.solver_seconds.mean * 1000:.3f} "
                f"max {self.solver_seconds.max * 1000:.3f}"
            )
            lines.append(
                f"{'rejected_per_batch':24s} mean {self.batch_rejections.mean:.3f}"
            )
        if self.shard_sizes.count:
            lines.append("--- sharded dispatch ---")
            lines.append(f"{'shards_solved':24s} {self.shard_sizes.count}")
            lines.append(
                f"{'shard_size':24s} mean {self.shard_sizes.mean:.2f} "
                f"max {int(self.shard_sizes.max)}"
            )
            lines.append(
                f"{'shard_solve_ms':24s} mean "
                f"{self.shard_solve_seconds.mean * 1000:.3f} "
                f"max {self.shard_solve_seconds.max * 1000:.3f}"
            )
            lines.append(
                f"{'boundary_conflicts':24s} total "
                f"{int(self.boundary_conflicts.total)} "
                f"mean {self.boundary_conflicts.mean:.3f}"
            )
            if self.shard_fallbacks:
                lines.append(
                    f"{'shard_fallbacks':24s} {self.shard_fallbacks} "
                    "(flushes solved globally: no grid index/coords)"
                )
        adaptive_ran = self.window_s_stats.count and (
            self.window_s_stats.min != self.window_s_stats.max
        )
        if adaptive_ran or self.carry_events:
            lines.append("--- adaptive window / carry-over ---")
            if self.window_s_stats.count:
                lines.append(
                    f"{'window_s':24s} mean {self.window_s_stats.mean:.2f} "
                    f"min {self.window_s_stats.min:.2f} "
                    f"max {self.window_s_stats.max:.2f}"
                )
            lines.append(
                f"{'assign_latency_s':24s} mean {self.assign_latency_s.mean:.2f}"
            )
            lines.append(
                f"{'carried':24s} events {self.carry_events} "
                f"mean/flush {self.carried_per_flush.mean:.3f} "
                f"max_carries {self.max_carries}"
            )
            if self.carry_events:
                lines.append(
                    f"{'carry_age_s':24s} mean {self.carry_age_s.mean:.2f} "
                    f"max {self.carry_age_s.max:.2f}"
                )
        if self.quote_seconds.count:
            lines.append("--- quote pipeline ---")
            lines.append(f"{'pipeline_flushes':24s} {self.quote_seconds.count}")
            lines.append(
                f"{'quote_ms':24s} mean {self.quote_seconds.mean * 1000:.3f} "
                f"max {self.quote_seconds.max * 1000:.3f}"
            )
            lines.append(
                f"{'staleness_requotes':24s} total "
                f"{int(self.staleness_requotes.total)} "
                f"mean {self.staleness_requotes.mean:.3f}"
            )
            lines.append(
                f"{'overlap_ratio':24s} mean {self.overlap_ratio.mean:.3f} "
                f"max {_fmt_stat(self.overlap_ratio.as_dict()['max'])}"
            )
            if self.quote_failures:
                lines.append(
                    f"{'quote_failures':24s} {self.quote_failures} "
                    "(worker quotes raced a schedule mutation; re-quoted)"
                )
        faults = self.registry.counter("fault.injected").value
        retries = self.registry.counter("retry.count").value
        recreations = self.registry.counter("pool.recreated").value
        ladder = (
            self.quote_columns_failed
            + self.shard_serial_rescues
            + self.flushes_degraded
            + self.fault_rescued_carries
        )
        if faults or retries or recreations or ladder:
            lines.append("--- fault tolerance ---")
            lines.append(f"{'faults_injected':24s} {faults}")
            lines.append(f"{'retries':24s} {retries}")
            if recreations:
                lines.append(f"{'pool_recreations':24s} {recreations}")
            lines.append(
                f"{'quote_columns_failed':24s} {self.quote_columns_failed} "
                f"(rows rescued via fault-carry: "
                f"{self.fault_rescued_carries})"
            )
            if self.shard_serial_rescues:
                lines.append(
                    f"{'shard_serial_rescues':24s} {self.shard_serial_rescues} "
                    "(shards re-solved serially in the parent)"
                )
            lines.append(
                f"{'flushes_degraded':24s} {self.flushes_degraded} "
                "(deadline tripped; dispatched greedily)"
            )
        slo = self.extra.get("slo")
        if slo is not None:
            lines.append("--- service-level objectives ---")
            lines.append(
                f"{'slo':24s} {'PASS' if slo['pass'] else 'FAIL'} "
                f"({slo['num_windows']} windows, "
                f"{slo['alert_windows']} burn alerts)"
            )
            for objective in slo["objectives"]:
                value = objective["overall_value"]
                status = {True: "pass", False: "FAIL", None: "no data"}[
                    objective["overall_pass"]
                ]
                rendered = "—" if value is None else f"{value:g}"
                lines.append(
                    f"{objective['label']:24s} {status} "
                    f"(overall {rendered}, "
                    f"{objective['burn_alerts']} alert windows)"
                )
        return "\n".join(lines)
