"""Command-line simulation runner.

Run a full ridesharing simulation on a generated city from the shell::

    python -m repro.sim --vehicles 50 --trips 200 --algorithm kinetic
    python -m repro.sim --algorithm mip --trips 40 --constraints 5:10
    python -m repro.sim --capacity unlimited --hotspot-theta 40
    python -m repro.sim --dispatch-policy lap --batch-window 15
    python -m repro.sim --dispatch-policy sharded --batch-window 15 \\
        --shards 4 --shard-backend thread
    python -m repro.sim --dispatch-policy lap --batch-window 15 \\
        --quote-workers 2 --quote-overlap 10
    python -m repro.sim --dispatch-policy lap --batch-window 10 \\
        --adaptive-window --window-min 5 --window-max 30 --carry-over
    python -m repro.sim --engine hub_label --vehicles 40

Prints the Section VI metrics (ACRT, ART buckets, occupancy, service
rate) and the service-guarantee audit.
"""

from __future__ import annotations

import argparse
import sys

from repro.algorithms.base import ALGORITHM_REGISTRY
from repro.core.constraints import ConstraintConfig
from repro.dispatch.policies import POLICY_REGISTRY
from repro.dispatch.quoting import QUOTE_BACKENDS
from repro.dispatch.sharding import SHARD_BACKENDS
from repro.roadnet.engine import ENGINE_KINDS, make_engine
from repro.roadnet.generators import grid_city
from repro.sim.config import SimulationConfig
from repro.sim.simulator import simulate
from repro.sim.workload import ShanghaiLikeWorkload


def parse_constraints(text: str) -> ConstraintConfig:
    """Parse ``"<wait minutes>:<detour percent>"``, e.g. ``"10:20"``."""
    try:
        wait, pct = text.split(":")
        return ConstraintConfig.from_minutes(float(wait), float(pct))
    except (ValueError, TypeError) as error:
        raise argparse.ArgumentTypeError(
            f"constraints must look like '10:20' (min:percent), got {text!r}"
        ) from error


def parse_capacity(text: str) -> int | None:
    if text.lower() in ("unlimited", "unlim", "none"):
        return None
    return int(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Run a ridesharing simulation on a synthetic city.",
    )
    parser.add_argument("--grid", type=int, default=25, help="city grid side")
    parser.add_argument("--vehicles", type=int, default=30)
    parser.add_argument("--trips", type=int, default=120)
    parser.add_argument("--hours", type=float, default=1.0)
    parser.add_argument(
        "--algorithm",
        default="kinetic",
        choices=sorted(ALGORITHM_REGISTRY),
    )
    parser.add_argument(
        "--tree-mode", default="slack", choices=("basic", "slack")
    )
    parser.add_argument("--hotspot-theta", type=float, default=None)
    parser.add_argument("--capacity", type=parse_capacity, default=4)
    parser.add_argument(
        "--constraints",
        type=parse_constraints,
        default=ConstraintConfig.from_minutes(10, 20),
        help="wait:detour, e.g. 10:20 for 10 min / 20%%",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=ENGINE_KINDS,
        help="shortest-path engine backing the run (auto = matrix for "
        "small cities, dijkstra otherwise)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-trip-meters", type=float, default=1000.0,
        help="discard shorter generated trips",
    )
    parser.add_argument(
        "--dispatch-policy",
        default="greedy",
        choices=sorted(POLICY_REGISTRY),
        help="batch assignment policy (repro.dispatch)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.0,
        help="batch window seconds; 0 = immediate per-request dispatch",
    )
    parser.add_argument(
        "--assignment-rounds", type=int, default=3,
        help="max LAP rounds for the iterative policy",
    )
    parser.add_argument(
        "--adaptive-window", action="store_true",
        help="retune the batch window per flush from the observed "
        "arrival intensity (requires --window-min and --window-max; "
        "--batch-window is the initial value)",
    )
    parser.add_argument(
        "--window-min", type=float, default=None,
        help="adaptive clamp band lower bound in seconds",
    )
    parser.add_argument(
        "--window-max", type=float, default=None,
        help="adaptive clamp band upper bound in seconds",
    )
    parser.add_argument(
        "--carry-over", action="store_true",
        help="requests that lose a flush re-enter the next window "
        "(bounded by their wait budget) instead of settling in-batch",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="spatial shard count for the sharded policy (1 = global)",
    )
    parser.add_argument(
        "--shard-backend",
        default="serial",
        choices=SHARD_BACKENDS,
        help="per-shard solve executor for the sharded policy",
    )
    parser.add_argument(
        "--shard-boundary-cells", type=int, default=None,
        help="candidate-halo width in grid cells for the sharded policy "
        "(default: no halo, keep every feasible candidate)",
    )
    parser.add_argument(
        "--shard-zero-copy", action="store_true",
        help="publish shard matrices into a shared-memory arena so "
        "process workers solve zero-copy views instead of pickled "
        "copies (inert on serial/thread backends; bit-identical "
        "assignments either way)",
    )
    parser.add_argument(
        "--shard-persistent-workers", action="store_true",
        help="keep process shard workers (and their cached arena "
        "attachments) alive across flushes instead of per-flush "
        "pickled pool submissions (inert on serial/thread backends)",
    )
    parser.add_argument(
        "--quote-workers", type=int, default=0,
        help="async quote-stage workers (0 = synchronous quoting at the "
        "solve instant, the pre-pipeline order)",
    )
    parser.add_argument(
        "--quote-backend",
        default="thread",
        choices=QUOTE_BACKENDS,
        help="quote-stage executor: thread overlaps quoting with event "
        "execution, serial quotes eagerly at flush time",
    )
    parser.add_argument(
        "--quote-overlap", type=float, default=0.0,
        help="simulated seconds between a flush (quote issue) and its "
        "solve+commit; events in the gap run while quotes compute",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record structured flush-pipeline spans (repro.obs); "
        "telemetry never feeds dispatch, so results are bit-identical",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the spans as Chrome trace-event JSONL "
        "(Perfetto-loadable; implies --trace)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry (p50/p90/p99 latency "
        "histograms) as metrics.json",
    )
    parser.add_argument(
        "--timeseries-out", default=None, metavar="PATH",
        help="write one JSONL row per simulated-time window (throughput, "
        "counter deltas, histogram windows, rolling quantiles)",
    )
    parser.add_argument(
        "--timeseries-window", type=float, default=60.0, metavar="SECONDS",
        help="simulated seconds per live-telemetry window",
    )
    parser.add_argument(
        "--timeseries-ring", type=int, default=5, metavar="N",
        help="windows merged for rolling quantiles (and the SLO engine's "
        "slow burn rate)",
    )
    parser.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="service-level objectives evaluated per window, e.g. "
        "'service_rate>=0.9,wait_p99<=300' "
        "(see docs/observability.md for the grammar)",
    )
    parser.add_argument(
        "--slo-out", default=None, metavar="PATH",
        help="write the machine-readable SLO verdict (slo.json; "
        "requires --slo)",
    )
    parser.add_argument(
        "--live-report", type=int, default=0, metavar="N",
        help="print a console status line every N completed telemetry "
        "windows (0 = never)",
    )
    parser.add_argument(
        "--resource-monitor", action="store_true",
        help="sample RSS, GC pauses and worker-pool queue depth into "
        "the registry once per telemetry window",
    )
    parser.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="write the final metrics registry in Prometheus text "
        "exposition format",
    )
    parser.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="deterministic fault-injection plan: comma-joined "
        "site:kind:trigger[:delay_s] clauses, e.g. "
        "'quote.task:crash:0.05,shard.solve:delay:0.02:0.5' "
        "(see docs/robustness.md for the grammar)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault injector's per-clause RNG streams",
    )
    parser.add_argument(
        "--flush-deadline", type=float, default=None, metavar="SECONDS",
        help="per-flush deadline budget in charged seconds (injected "
        "delays + retry backoffs); an exhausted flush downgrades to "
        "the greedy policy for that flush only",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    city = grid_city(args.grid, args.grid, seed=args.seed)
    engine = make_engine(city, args.engine)
    trips = ShanghaiLikeWorkload(
        city, seed=args.seed, min_trip_meters=args.min_trip_meters
    ).generate(num_trips=args.trips, duration_seconds=args.hours * 3600.0)

    config = SimulationConfig(
        num_vehicles=args.vehicles,
        capacity=args.capacity,
        constraints=args.constraints,
        algorithm=args.algorithm,
        tree_mode=args.tree_mode,
        hotspot_theta=args.hotspot_theta,
        engine_kind=args.engine,
        dispatch_policy=args.dispatch_policy,
        batch_window_s=args.batch_window,
        assignment_rounds=args.assignment_rounds,
        adaptive_window=args.adaptive_window,
        window_min_s=args.window_min,
        window_max_s=args.window_max,
        carry_over=args.carry_over,
        num_shards=args.shards,
        shard_backend=args.shard_backend,
        shard_boundary_cells=args.shard_boundary_cells,
        shard_zero_copy=args.shard_zero_copy,
        shard_persistent_workers=args.shard_persistent_workers,
        quote_workers=args.quote_workers,
        quote_backend=args.quote_backend,
        quote_overlap_s=args.quote_overlap,
        trace=args.trace or args.trace_out is not None,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        timeseries_out=args.timeseries_out,
        timeseries_window_s=args.timeseries_window,
        timeseries_ring=args.timeseries_ring,
        slo=args.slo,
        slo_out=args.slo_out,
        live_report_every=args.live_report,
        resource_monitor=args.resource_monitor,
        fault_spec=args.fault_spec,
        fault_seed=args.fault_seed,
        flush_deadline_s=args.flush_deadline,
        seed=args.seed,
    )
    print(
        f"city {city.num_vertices}v/{city.num_edges}e | "
        f"engine {getattr(engine, 'kind', args.engine)} | "
        f"{args.vehicles} vehicles ({args.algorithm}) | "
        f"{len(trips)} trips | {args.constraints.label} | "
        f"capacity {'unlim' if args.capacity is None else args.capacity}"
    )
    report = simulate(engine, config, trips)

    print("\nsummary:")
    for key, value in report.summary().items():
        print(f"  {key:24s} {value}")
    print("\nART by active requests:")
    for bucket, stats in report.art.as_dict().items():
        print(
            f"  {bucket:2d} active: {stats['mean'] * 1000:9.3f} ms "
            f"({stats['count']} quotes)"
        )
    if config.trace_out:
        print(f"\ntrace written to {config.trace_out}")
    if config.metrics_out:
        print(f"metrics written to {config.metrics_out}")
    if config.timeseries_out:
        windows = report.extra.get("timeseries", {}).get("windows", 0)
        print(
            f"time series written to {config.timeseries_out} "
            f"({windows} windows)"
        )
    if args.prom_out:
        from repro.obs import write_prom_text

        write_prom_text(report.registry, args.prom_out)
        print(f"prometheus exposition written to {args.prom_out}")
    slo_document = report.extra.get("slo")
    if slo_document is not None:
        verdict = "PASS" if slo_document["pass"] else "FAIL"
        print(
            f"\nSLO verdict: {verdict} "
            f"({slo_document['num_windows']} windows, "
            f"{slo_document['alert_windows']} burn-alert windows)"
        )
        if config.slo_out:
            print(f"slo verdict written to {config.slo_out}")
    violations = report.verify_service_guarantees()
    print(f"\nservice-guarantee audit: {len(violations)} violation(s)")
    for line in violations[:10]:
        print("  " + line)
    return 0 if not violations else 1


if __name__ == "__main__":
    sys.exit(main())
