"""Two-phase insertion heuristic (related work [19], Coslovich et al.).

The classical fast heuristic for dynamic dial-a-ride: keep the vehicle's
committed stop order fixed and try every placement of the new pickup at
position ``i`` and the new dropoff at position ``j >= i``. O(m^2)
evaluations, no reordering of existing commitments. Included as an
ablation baseline: it shows what the kinetic tree's full schedule
flexibility buys in matching quality (the tree considers *all* valid
reorderings; insertion considers one).
"""

from __future__ import annotations

from repro.algorithms.base import SchedulingAlgorithm, register
from repro.core.problem import ScheduleResult, SchedulingProblem
from repro.core.stop import dropoff, pickup


@register
class TwoPhaseInsertion(SchedulingAlgorithm):
    """Insert the new request into the fixed committed order."""

    name = "insertion"

    def solve(self, problem: SchedulingProblem) -> ScheduleResult | None:
        base = self._base_order(problem)
        if base is None:
            return None
        if problem.new_request is None:
            evaluation = problem.evaluate(self.engine, base)
            if evaluation is None:
                return None
            return ScheduleResult(
                stops=evaluation.stops,
                arrivals=evaluation.arrivals,
                cost=evaluation.cost,
            )

        new_pickup = pickup(problem.new_request)
        new_dropoff = dropoff(problem.new_request)
        best = None
        expansions = 0
        for i in range(len(base) + 1):
            for j in range(i, len(base) + 1):
                expansions += 1
                candidate = list(base)
                candidate.insert(i, new_pickup)
                candidate.insert(j + 1, new_dropoff)
                evaluation = problem.evaluate(self.engine, candidate)
                if evaluation is None:
                    continue
                if best is None or evaluation.cost < best.cost:
                    best = evaluation
        if best is None:
            return None
        return ScheduleResult(
            stops=best.stops,
            arrivals=best.arrivals,
            cost=best.cost,
            expansions=expansions,
        )

    def _base_order(self, problem: SchedulingProblem):
        """The committed order to insert into.

        The simulator passes the executing order via
        ``problem.metadata``-free convention: onboard dropoffs in pickup
        order, then pending trips FIFO — the natural committed order when
        no reordering is ever performed (this heuristic never reorders).
        """
        onboard = sorted(problem.onboard.items(), key=lambda item: item[1])
        stops = [dropoff(request) for request, _ in onboard]
        for request in problem.pending:
            stops.append(pickup(request))
            stops.append(dropoff(request))
        evaluation = problem.evaluate(self.engine, stops)
        if evaluation is None and stops:
            return None
        return tuple(stops)
