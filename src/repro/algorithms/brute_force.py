"""Brute-force scheduling: permutation enumeration with pruning.

Section II: "The brute-force algorithm to find the augmented valid trip
schedules is straightforward. We enumerate all of the permutations and
then check the constraints." As the paper notes for its experiments, the
enumeration "can stop earlier on average when checking the feasibility of
each permutation" — implemented here by extending prefixes depth-first
and abandoning a prefix the moment it violates a constraint (constraint
violations are monotone in prefix extension, so no valid permutation is
lost).
"""

from __future__ import annotations

from repro.algorithms.base import SchedulingAlgorithm, register
from repro.core.problem import ScheduleResult, SchedulingProblem
from repro.core.schedule import _EPS
from repro.core.stop import Stop


@register
class BruteForce(SchedulingAlgorithm):
    """Exhaustive search over valid stop orderings."""

    name = "brute_force"

    def solve(self, problem: SchedulingProblem) -> ScheduleResult | None:
        stops = list(problem.stops_to_schedule)
        if not stops:
            return ScheduleResult(stops=(), arrivals=(), cost=0.0)
        engine = self.engine
        capacity = problem.capacity
        best_cost = [float("inf")]
        best: list[tuple[Stop, ...] | None] = [None]
        best_arrivals: list[tuple[float, ...]] = [()]
        expansions = [0]
        pickup_times = problem.onboard_pickup_times

        def extend(
            loc: int,
            time: float,
            remaining: list[Stop],
            load: int,
            path: list[Stop],
            arrivals: list[float],
        ) -> None:
            if not remaining:
                cost = time - problem.start_time
                if cost < best_cost[0]:
                    best_cost[0] = cost
                    best[0] = tuple(path)
                    best_arrivals[0] = tuple(arrivals)
                return
            for index, stop in enumerate(remaining):
                request = stop.request
                rid = request.request_id
                if stop.is_dropoff and rid not in pickup_times:
                    continue
                expansions[0] += 1
                arrival = time + engine.distance(loc, stop.vertex)
                if stop.is_pickup:
                    if arrival > request.pickup_deadline + _EPS:
                        continue
                    if capacity is not None and load + 1 > capacity:
                        continue
                    pickup_times[rid] = arrival
                    new_load = load + 1
                else:
                    if arrival - pickup_times[rid] > request.max_ride_cost + _EPS:
                        continue
                    new_load = load - 1
                path.append(stop)
                arrivals.append(arrival)
                extend(
                    stop.vertex,
                    arrival,
                    remaining[:index] + remaining[index + 1 :],
                    new_load,
                    path,
                    arrivals,
                )
                path.pop()
                arrivals.pop()
                if stop.is_pickup:
                    del pickup_times[rid]

        extend(
            problem.start_vertex,
            problem.start_time,
            stops,
            len(problem.onboard),
            [],
            [],
        )
        if best[0] is None:
            return None
        return ScheduleResult(
            stops=best[0],
            arrivals=best_arrivals[0],
            cost=best_cost[0],
            expansions=expansions[0],
        )
