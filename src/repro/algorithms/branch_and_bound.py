"""Branch-and-bound scheduling (Section II / III of the paper).

The algorithm "systematically enumerates all candidate schedules",
expanding the partial schedule with the lowest lower bound first
(best-first search). The bound for a partial schedule ending at ``x_k``
is ``dT(r_{m+1}, x_k)`` plus, for each node not yet scheduled, the cost
of its minimum-cost incident edge in the complete graph over the points
to schedule (Figure 2 of the paper).

The paper also notes the flip side measured in Fig. 6: "branch and bound
(...) has to first calculate the minimum edges for each of the vertices
in the complete graph" — that initialization cost is faithfully incurred
here by building the pairwise distance matrix up front.
"""

from __future__ import annotations

import heapq
import itertools

from repro.algorithms.base import SchedulingAlgorithm, register
from repro.core.problem import ScheduleResult, SchedulingProblem
from repro.core.schedule import _EPS
from repro.core.stop import Stop


@register
class BranchAndBound(SchedulingAlgorithm):
    """Best-first branch and bound with the min-incident-edge bound."""

    name = "branch_and_bound"

    def solve(self, problem: SchedulingProblem) -> ScheduleResult | None:
        stops = list(problem.stops_to_schedule)
        if not stops:
            return ScheduleResult(stops=(), arrivals=(), cost=0.0)
        engine = self.engine
        capacity = problem.capacity

        # Initialization: complete-graph distances over {start} + stops and
        # each point's minimum incident edge cost.
        points = [problem.start_vertex] + [s.vertex for s in stops]
        n = len(points)
        dist = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i != j:
                    dist[i][j] = engine.distance(points[i], points[j])
        min_incident = [
            min(dist[i][j] for j in range(n) if j != i) if n > 1 else 0.0
            for i in range(n)
        ]

        # Search state: (bound, tiebreak, time, load, mask, path_indices,
        # pickup_times). ``mask`` tracks scheduled stops by bit.
        counter = itertools.count()
        full_mask = (1 << len(stops)) - 1
        onboard = problem.onboard_pickup_times
        start_state = (
            sum(min_incident[1:]),  # bound: nothing scheduled yet
            next(counter),
            problem.start_time,
            len(problem.onboard),
            0,
            (),
            onboard,
        )
        heap = [start_state]
        best_cost = float("inf")
        best_path: tuple[int, ...] | None = None
        best_arrivals: tuple[float, ...] = ()
        expansions = 0

        while heap:
            bound, _, time, load, mask, path, pickups = heapq.heappop(heap)
            if bound >= best_cost - _EPS:
                break  # best-first: every remaining candidate is worse
            if mask == full_mask:
                cost = time - problem.start_time
                if cost < best_cost:
                    best_cost = cost
                    best_path = path
                continue
            expansions += 1
            row = path[-1] + 1 if path else 0
            for index, stop in enumerate(stops):
                if mask & (1 << index):
                    continue
                request = stop.request
                rid = request.request_id
                if stop.is_dropoff and rid not in pickups:
                    continue
                arrival = time + dist[row][index + 1]
                if stop.is_pickup:
                    if arrival > request.pickup_deadline + _EPS:
                        continue
                    if capacity is not None and load + 1 > capacity:
                        continue
                    new_pickups = dict(pickups)
                    new_pickups[rid] = arrival
                    new_load = load + 1
                else:
                    if arrival - pickups[rid] > request.max_ride_cost + _EPS:
                        continue
                    new_pickups = pickups
                    new_load = load - 1
                new_mask = mask | (1 << index)
                remaining_bound = sum(
                    min_incident[k + 1]
                    for k in range(len(stops))
                    if not new_mask & (1 << k)
                )
                new_bound = (arrival - problem.start_time) + remaining_bound
                if new_bound >= best_cost - _EPS:
                    continue
                heapq.heappush(
                    heap,
                    (
                        new_bound,
                        next(counter),
                        arrival,
                        new_load,
                        new_mask,
                        path + (index,),
                        new_pickups,
                    ),
                )

        if best_path is None:
            return None
        ordered = tuple(stops[i] for i in best_path)
        evaluation = problem.evaluate(engine, ordered)
        assert evaluation is not None, "B&B accepted an invalid schedule"
        return ScheduleResult(
            stops=evaluation.stops,
            arrivals=evaluation.arrivals,
            cost=evaluation.cost,
            expansions=expansions,
        )
