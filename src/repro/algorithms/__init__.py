"""Single-vehicle scheduling algorithms (Sections II-III of the paper).

Each algorithm maps a :class:`~repro.core.problem.SchedulingProblem` —
a vehicle's unfinished commitments plus one new request — to the
minimum-cost valid augmented schedule, or ``None`` when the vehicle
cannot serve the request:

* :class:`~repro.algorithms.brute_force.BruteForce` — permutation DFS
  with feasibility pruning;
* :class:`~repro.algorithms.branch_and_bound.BranchAndBound` — best-first
  search with the paper's min-incident-edge lower bound;
* :class:`~repro.algorithms.mip.MixedIntegerProgramming` — the paper's
  MTZ-linearized MIP formulation solved by HiGHS;
* :class:`~repro.algorithms.insertion.TwoPhaseInsertion` — the classical
  insertion heuristic (related work [19]), kept as an ablation baseline.

The kinetic tree lives in :mod:`repro.core.kinetic`;
:class:`~repro.algorithms.base.KineticTreeAlgorithm` adapts it to this
interface for one-shot head-to-head comparisons.
"""

from repro.algorithms.base import (
    ALGORITHM_REGISTRY,
    KineticTreeAlgorithm,
    SchedulingAlgorithm,
    make_algorithm,
)
from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.brute_force import BruteForce
from repro.algorithms.insertion import TwoPhaseInsertion
from repro.algorithms.mip import MixedIntegerProgramming

__all__ = [
    "SchedulingAlgorithm",
    "BruteForce",
    "BranchAndBound",
    "MixedIntegerProgramming",
    "TwoPhaseInsertion",
    "KineticTreeAlgorithm",
    "ALGORITHM_REGISTRY",
    "make_algorithm",
]
