"""Mixed-integer programming scheduler (Section III.A of the paper).

The augmented-schedule problem on the complete directed graph
``G = (N, A)`` with ``N = D' ∪ P ∪ D ∪ {0}``:

* ``0`` — the vehicle's current position;
* ``D'`` — dropoffs of riders already picked up (size ``k``);
* ``P`` — pickups of trips not started (size ``n``, including the new
  request);
* ``D`` — their matching dropoffs (pickup ``i`` matches dropoff
  ``i + n``).

Binary arc variables ``y_ij`` select the successor structure; continuous
``B_i`` are service times linearized with Miller-Tucker-Zemlin-style
big-M constraints exactly as the paper's constraint (5'); constraints
(7)-(9) enforce waiting-time and service guarantees. Seat capacity — left
implicit in the paper's formulation — is enforced with standard DARP load
propagation variables ``Q_i`` so that all algorithms solve the identical
problem.

Solved with HiGHS via :func:`scipy.optimize.milp` (the paper used a
traditional solver; the observed ~20x slowdown versus search algorithms
comes from exactly the per-request model build + solver overhead this
module reproduces).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.algorithms.base import SchedulingAlgorithm, register
from repro.core.problem import ScheduleResult, SchedulingProblem
from repro.core.stop import Stop, dropoff, pickup


@register
class MixedIntegerProgramming(SchedulingAlgorithm):
    """The paper's MIP formulation, solved by HiGHS."""

    name = "mip"

    def __init__(self, engine, time_limit: float | None = None):
        super().__init__(engine)
        self.time_limit = time_limit

    def solve(self, problem: SchedulingProblem) -> ScheduleResult | None:
        onboard = list(problem.onboard.items())
        pending = list(problem.pending)
        if problem.new_request is not None:
            pending.append(problem.new_request)
        k, n = len(onboard), len(pending)
        if k == 0 and n == 0:
            return ScheduleResult(stops=(), arrivals=(), cost=0.0)

        # Node layout: 0 | D' (1..k) | P (k+1..k+n) | D (k+n+1..k+2n).
        stops: list[Stop | None] = [None]
        stops += [dropoff(r) for r, _ in onboard]
        stops += [pickup(r) for r in pending]
        stops += [dropoff(r) for r in pending]
        N = 1 + k + 2 * n
        t0 = problem.start_time
        vertices = [problem.start_vertex] + [s.vertex for s in stops[1:]]

        d = np.zeros((N, N))
        for i in range(N):
            for j in range(N):
                if i != j:
                    # Zero-cost arcs between co-located stops would admit
                    # zero-length cycles that defeat the MTZ acyclicity
                    # argument; the paper inflates d_ii for the same
                    # reason. The inflation must sit well above the
                    # solver's feasibility tolerance or a 2-cycle can
                    # still sneak through numerically (1 ms of travel is
                    # negligible against costs of hundreds of seconds).
                    d[i, j] = max(
                        self.engine.distance(vertices[i], vertices[j]), 1e-3
                    )

        # Time windows [e_i, l_i] relative to t0 (paper's M_ij recipe).
        earliest = d[0].copy()
        latest = np.full(N, np.inf)
        for idx, (request, picked_at) in enumerate(onboard, start=1):
            latest[idx] = picked_at + request.max_ride_cost - t0
        for idx, request in enumerate(pending):
            p_node = 1 + k + idx
            d_node = p_node + n
            latest[p_node] = request.pickup_deadline - t0
            latest[d_node] = request.pickup_deadline + request.max_ride_cost - t0
        if np.any(latest < earliest - 1e-9):
            return None  # some commitment is already unservable

        # Variables: y (N*N) | B (N) | Q (N).
        num_y = N * N
        num_vars = num_y + 2 * N

        def y_idx(i: int, j: int) -> int:
            return i * N + j

        b_idx = num_y
        q_idx = num_y + N

        cost = np.zeros(num_vars)
        for i in range(N):
            for j in range(N):
                if i != j:
                    cost[y_idx(i, j)] = d[i, j]

        lb = np.zeros(num_vars)
        ub = np.ones(num_vars)
        integrality = np.zeros(num_vars)
        integrality[:num_y] = 1
        for i in range(N):
            ub[y_idx(i, i)] = 0.0  # no self loops
            ub[y_idx(i, 0)] = 0.0  # nothing precedes the start
        # B bounds.
        cap = problem.capacity if problem.capacity is not None else N
        initial_load = len(onboard)
        for i in range(N):
            lb[b_idx + i] = earliest[i] if i else 0.0
            ub[b_idx + i] = latest[i] if np.isfinite(latest[i]) else 1e12
        ub[b_idx] = 0.0  # B_0 = 0
        # Q bounds: load after servicing node i.
        for i in range(N):
            lb[q_idx + i] = 0.0
            ub[q_idx + i] = cap
        lb[q_idx] = ub[q_idx] = initial_load
        for i in range(1 + k, 1 + k + n):  # pickups leave at least one rider
            lb[q_idx + i] = 1.0

        rows: list[dict[int, float]] = []
        row_lb: list[float] = []
        row_ub: list[float] = []

        def add_row(coeffs: dict[int, float], low: float, high: float) -> None:
            rows.append(coeffs)
            row_lb.append(low)
            row_ub.append(high)

        # (2) one predecessor per non-start node.
        for i in range(1, N):
            add_row({y_idx(j, i): 1.0 for j in range(N) if j != i}, 1.0, 1.0)
        # (3) exactly one successor of the start.
        add_row({y_idx(0, j): 1.0 for j in range(1, N)}, 1.0, 1.0)
        # At most one successor elsewhere (path, not a tree).
        for i in range(1, N):
            add_row({y_idx(i, j): 1.0 for j in range(1, N) if j != i}, 0.0, 1.0)
        # Explicit 2-cycle elimination: belt-and-braces against numerical
        # slack in the MTZ rows between (near-)co-located stops.
        for i in range(1, N):
            for j in range(i + 1, N):
                add_row({y_idx(i, j): 1.0, y_idx(j, i): 1.0}, 0.0, 1.0)

        # (5') MTZ time propagation: B_j >= B_i + d_ij - M_ij (1 - y_ij).
        delta_q = np.zeros(N)
        for j in range(1, N):
            delta_q[j] = 1.0 if stops[j].is_pickup else -1.0
        for i in range(N):
            l_i = latest[i] if np.isfinite(latest[i]) else ub[b_idx + i]
            for j in range(1, N):
                if i == j:
                    continue
                m_time = max(0.0, l_i + d[i, j] - earliest[j])
                add_row(
                    {
                        b_idx + j: 1.0,
                        b_idx + i: -1.0,
                        y_idx(i, j): -m_time,
                    },
                    d[i, j] - m_time,
                    np.inf,
                )
                # Load propagation: |Q_j - Q_i - q_j| <= M_q (1 - y_ij).
                m_q = cap + 1.0
                add_row(
                    {q_idx + j: 1.0, q_idx + i: -1.0, y_idx(i, j): -m_q},
                    delta_q[j] - m_q,
                    np.inf,
                )
                add_row(
                    {q_idx + j: 1.0, q_idx + i: -1.0, y_idx(i, j): m_q},
                    -np.inf,
                    delta_q[j] + m_q,
                )

        # (9) service constraint for not-yet-picked-up trips:
        # d(s,e) <= B_{i+n} - B_i <= (1+eps) d(s,e).
        for idx, request in enumerate(pending):
            p_node = 1 + k + idx
            d_node = p_node + n
            add_row(
                {b_idx + d_node: 1.0, b_idx + p_node: -1.0},
                request.direct_cost,
                request.max_ride_cost,
            )
        # (7)/(8) are the variable upper bounds on B set above.

        constraint = LinearConstraint(
            _to_sparse(rows, num_vars), np.array(row_lb), np.array(row_ub)
        )
        options = {}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        result = milp(
            c=cost,
            constraints=[constraint],
            bounds=Bounds(lb, ub),
            integrality=integrality,
            options=options,
        )
        if not result.success or result.x is None:
            return None

        order = _reconstruct_order(result.x[:num_y], N)
        if len(order) != N - 1:
            return None  # defensive: solver returned a broken successor chain
        ordered_stops = tuple(stops[i] for i in order)
        evaluation = problem.evaluate(self.engine, ordered_stops)
        if evaluation is None:
            # Numerical slack in the MIP admitted a schedule the exact
            # validator rejects at tolerance; treat as infeasible.
            return None
        return ScheduleResult(
            stops=evaluation.stops,
            arrivals=evaluation.arrivals,
            cost=evaluation.cost,
            expansions=int(getattr(result, "mip_node_count", 0) or 0),
            metadata={"mip_gap": float(getattr(result, "mip_gap", 0.0) or 0.0)},
        )


def _to_sparse(rows: list[dict[int, float]], num_vars: int) -> csr_matrix:
    """Assemble constraint rows (dicts of column -> coefficient) into CSR."""
    data: list[float] = []
    row_indices: list[int] = []
    col_indices: list[int] = []
    for r, coeffs in enumerate(rows):
        for c, value in coeffs.items():
            row_indices.append(r)
            col_indices.append(c)
            data.append(value)
    return csr_matrix(
        (data, (row_indices, col_indices)), shape=(len(rows), num_vars)
    )


def _reconstruct_order(y_values: np.ndarray, N: int) -> list[int]:
    """Follow the selected arcs from node 0 through the path."""
    succ: dict[int, int] = {}
    grid = y_values.reshape(N, N)
    for i in range(N):
        for j in range(N):
            if i != j and grid[i, j] > 0.5:
                succ[i] = j
    order: list[int] = []
    node = 0
    while node in succ and len(order) < N:
        node = succ[node]
        order.append(node)
    return order
