"""Strategy interface shared by all single-vehicle schedulers."""

from __future__ import annotations

import abc

from repro.core.problem import ScheduleResult, SchedulingProblem


class SchedulingAlgorithm(abc.ABC):
    """Finds the minimum-cost valid augmented schedule for one vehicle.

    Implementations are stateless with respect to individual vehicles:
    all vehicle state arrives in the
    :class:`~repro.core.problem.SchedulingProblem`. (The kinetic tree is
    inherently stateful; its adapter below reconstructs a throwaway tree,
    which is exactly what the paper's one-shot ART comparisons measure.)
    """

    #: Registry key and display name, set by subclasses.
    name: str = "abstract"

    def __init__(self, engine):
        self.engine = engine

    @abc.abstractmethod
    def solve(self, problem: SchedulingProblem) -> ScheduleResult | None:
        """Best augmented schedule, or ``None`` if infeasible."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class KineticTreeAlgorithm(SchedulingAlgorithm):
    """One-shot adapter: answer a :class:`SchedulingProblem` with a fresh
    kinetic tree.

    Builds the tree over the problem's existing commitments (in their
    currently committed order — rebuilding *all* orders would overstate
    single-shot cost), then inserts the new request. Used for algorithm
    comparisons on identical problems; the simulator uses live
    :class:`~repro.core.kinetic.tree.KineticTree` instances instead.
    """

    name = "kinetic"

    def __init__(self, engine, mode: str = "slack", hotspot_theta: float | None = None):
        super().__init__(engine)
        self.mode = mode
        self.hotspot_theta = hotspot_theta

    def solve(self, problem: SchedulingProblem) -> ScheduleResult | None:
        from repro.core.kinetic.tree import KineticTree

        tree = KineticTree.from_problem(
            self.engine, problem, mode=self.mode, hotspot_theta=self.hotspot_theta
        )
        if tree is None:
            return None
        if problem.new_request is None:
            best = tree.best_schedule()
            if best is None:
                return ScheduleResult(stops=(), arrivals=(), cost=0.0)
            evaluation = problem.evaluate(self.engine, best[1])
            assert evaluation is not None, "tree materialized an invalid schedule"
            return ScheduleResult(
                stops=evaluation.stops,
                arrivals=evaluation.arrivals,
                cost=evaluation.cost,
            )
        trial = tree.try_insert(
            problem.new_request, problem.start_vertex, problem.start_time
        )
        if trial is None:
            return None
        tree.commit(trial)
        best = tree.best_schedule()
        assert best is not None
        evaluation = problem.evaluate(self.engine, best[1])
        assert evaluation is not None, "tree materialized an invalid schedule"
        return ScheduleResult(
            stops=evaluation.stops,
            arrivals=evaluation.arrivals,
            cost=evaluation.cost,
            expansions=trial.expansions,
        )


#: name -> constructor for the four paper algorithms plus extras.
ALGORITHM_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding an algorithm to the registry."""
    ALGORITHM_REGISTRY[cls.name] = cls
    return cls


def make_algorithm(name: str, engine, **kwargs) -> SchedulingAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        cls = ALGORITHM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHM_REGISTRY))
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None
    return cls(engine, **kwargs)


ALGORITHM_REGISTRY["kinetic"] = KineticTreeAlgorithm
