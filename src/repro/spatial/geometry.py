"""Planar geometry helpers for the spatial index."""

from __future__ import annotations

from dataclasses import dataclass
from math import hypot


def euclidean_distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Straight-line distance between two planar points (meters)."""
    return hypot(a[0] - b[0], a[1] - b[1])


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned bounding box in meters."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self):
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError("bounding box has negative extent")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside (inclusive) the box."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def clamp(self, x: float, y: float) -> tuple[float, float]:
        """The closest point inside the box."""
        return (
            min(max(x, self.min_x), self.max_x),
            min(max(y, self.min_y), self.max_y),
        )

    @staticmethod
    def of_points(points) -> "BoundingBox":
        """Smallest box containing all ``(x, y)`` points."""
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if not xs:
            raise ValueError("cannot bound an empty point set")
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))
