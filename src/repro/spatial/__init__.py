"""Spatial indexing of moving vehicles.

The paper (Section IV, "Updating ∆ and Tree") weighs sophisticated moving
object indexes (TPR-tree, Bx-tree, ...) against maintenance cost and
chooses "a simple grid-based spatial index. The index is updated when a
vehicle moves across boundaries of the index bounding box." This package
implements that index plus the geometry helpers it needs.
"""

from repro.spatial.geometry import BoundingBox, euclidean_distance
from repro.spatial.grid_index import GridIndex

__all__ = ["GridIndex", "BoundingBox", "euclidean_distance"]
