"""Grid-based spatial index over moving vehicles.

The paper's design: vehicles report locations periodically; "the index is
updated when a vehicle moves across boundaries of the index bounding box.
For each request, it identifies the vehicles possibly within ``w`` of the
request, asks the vehicle's actual location, and then tests if these
vehicles can accommodate the request."

The index therefore only needs to be *conservative*: a radius query must
return a superset of the vehicles whose road-network distance is within
``w`` (straight-line distance lower-bounds network distance on planar
street graphs with metric weights). Exact feasibility is re-checked by the
matcher against actual positions.
"""

from __future__ import annotations

from math import ceil, floor

from repro.spatial.geometry import BoundingBox


class GridIndex:
    """Uniform grid over a bounding box mapping cells -> vehicle ids.

    Parameters
    ----------
    bounds:
        Spatial extent (meters). Out-of-box points clamp to the border
        cells, so slightly stray coordinates degrade gracefully.
    cell_meters:
        Cell edge length. The paper's choice trades maintenance cost
        against query precision; a few hundred meters works well for taxi
        densities.
    """

    def __init__(self, bounds: BoundingBox, cell_meters: float = 500.0):
        if cell_meters <= 0:
            raise ValueError("cell_meters must be positive")
        self.bounds = bounds
        self.cell_meters = float(cell_meters)
        self.num_cols = max(1, ceil(bounds.width / cell_meters))
        self.num_rows = max(1, ceil(bounds.height / cell_meters))
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._where: dict[int, tuple[int, int]] = {}
        self.updates = 0
        self.moves_within_cell = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Grid cell containing the (clamped) point."""
        cx, cy = self.bounds.clamp(x, y)
        col = min(int((cx - self.bounds.min_x) / self.cell_meters), self.num_cols - 1)
        row = min(int((cy - self.bounds.min_y) / self.cell_meters), self.num_rows - 1)
        return row, col

    def update(self, vehicle_id: int, x: float, y: float) -> bool:
        """Report a vehicle position.

        Returns True when the vehicle changed cell (an index write);
        within-cell movement is a no-op, the property that makes the grid
        cheap to maintain.
        """
        cell = self.cell_of(x, y)
        old = self._where.get(vehicle_id)
        if old == cell:
            self.moves_within_cell += 1
            return False
        if old is not None:
            members = self._cells[old]
            members.discard(vehicle_id)
            if not members:
                del self._cells[old]
        self._cells.setdefault(cell, set()).add(vehicle_id)
        self._where[vehicle_id] = cell
        self.updates += 1
        return True

    def remove(self, vehicle_id: int) -> None:
        """Drop a vehicle from the index (e.g. going off shift)."""
        old = self._where.pop(vehicle_id, None)
        if old is not None:
            members = self._cells[old]
            members.discard(vehicle_id)
            if not members:
                del self._cells[old]

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, vehicle_id: int) -> bool:
        return vehicle_id in self._where

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cell_location(self, vehicle_id: int) -> tuple[int, int] | None:
        """Last reported ``(row, col)`` cell of a vehicle, ``None`` if the
        vehicle never reported (or was removed)."""
        return self._where.get(vehicle_id)

    def cells_in_region(
        self, min_row: int, min_col: int, max_row: int, max_col: int
    ) -> list[tuple[int, int]]:
        """Every cell coordinate in the (clamped) rectangle, row-major.

        The shard-enumeration primitive: a region dilated by ``k`` cells
        is ``cells_in_region(r - k, c - k, r + k, c + k)`` unioned over
        the region's cells. Empty cells are included — region geometry
        must not depend on which cells currently hold vehicles — and an
        empty (inverted or fully out-of-grid) rectangle yields ``[]``.
        """
        min_row = max(min_row, 0)
        min_col = max(min_col, 0)
        max_row = min(max_row, self.num_rows - 1)
        max_col = min(max_col, self.num_cols - 1)
        return [
            (row, col)
            for row in range(min_row, max_row + 1)
            for col in range(min_col, max_col + 1)
        ]

    def occupied_cells(self) -> list[tuple[int, int]]:
        """Cells currently holding at least one vehicle, sorted."""
        return sorted(self._cells)

    def vehicles_in_cells(self, cells) -> list[int]:
        """Union of vehicle ids over ``cells``, sorted (deterministic
        regardless of set iteration order); empty/unknown cells
        contribute nothing."""
        found: set[int] = set()
        for cell in cells:
            members = self._cells.get(tuple(cell))
            if members:
                found.update(members)
        return sorted(found)

    def query_radius(self, x: float, y: float, radius: float) -> list[int]:
        """Vehicle ids possibly within ``radius`` meters of the point.

        Conservative: covers every cell intersecting the disc, so the
        result is a superset of vehicles whose *reported* position is
        within ``radius``.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        min_row = floor((y - radius - self.bounds.min_y) / self.cell_meters)
        max_row = floor((y + radius - self.bounds.min_y) / self.cell_meters)
        min_col = floor((x - radius - self.bounds.min_x) / self.cell_meters)
        max_col = floor((x + radius - self.bounds.min_x) / self.cell_meters)
        min_row = max(min_row, 0)
        min_col = max(min_col, 0)
        max_row = min(max_row, self.num_rows - 1)
        max_col = min(max_col, self.num_cols - 1)
        found: list[int] = []
        for row in range(min_row, max_row + 1):
            for col in range(min_col, max_col + 1):
                members = self._cells.get((row, col))
                if members:
                    found.extend(members)
        return found

    def all_vehicles(self) -> list[int]:
        """Every indexed vehicle id."""
        return list(self._where)

    def stats(self) -> dict[str, float]:
        """Maintenance counters for the harness."""
        return {
            "vehicles": len(self._where),
            "occupied_cells": len(self._cells),
            "updates": self.updates,
            "moves_within_cell": self.moves_within_cell,
        }
