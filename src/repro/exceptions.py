"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid vertex references."""


class DisconnectedError(GraphError):
    """Raised when a shortest-path query has no finite answer."""

    def __init__(self, source, target):
        self.source = source
        self.target = target
        super().__init__(f"no path from vertex {source} to vertex {target}")


class ScheduleError(ReproError):
    """Raised for structurally invalid schedules (e.g. dropoff before pickup)."""


class InfeasibleError(ReproError):
    """Raised when a scheduling algorithm is asked to produce a schedule
    but no valid schedule exists."""


class CapacityError(ReproError):
    """Raised when an operation would exceed a vehicle's seat capacity."""


class AssignmentInfeasibleError(ReproError):
    """Raised by the batch assignment solver when a caller demands a
    complete matching but infeasible cells make some rows unassignable —
    or when an assignment is costed against a pair the matrix marks
    infeasible. Carries the offending row indices so dispatch layers can
    report *which* requests could not be matched instead of silently
    dropping them."""

    def __init__(self, rows, message: str | None = None):
        self.rows = tuple(rows)
        if message is None:
            message = (
                "no feasible assignment for row(s) "
                + ", ".join(str(r) for r in self.rows)
            )
        super().__init__(message)


class SimulationError(ReproError):
    """Raised for inconsistent simulator state (e.g. events out of order)."""


class FaultInjectedError(ReproError):
    """Raised by a deterministic ``crash`` fault (:mod:`repro.faults`).

    Carries the injection site and the opportunity ordinal that fired so
    failure paths under test can assert *which* draw they are handling.
    """

    def __init__(self, site: str, seq: int):
        self.site = site
        self.seq = seq
        super().__init__(f"injected crash at {site} (opportunity {seq})")


class QuoteFailedError(ReproError):
    """Raised when one vehicle's quote column still fails after the
    retry budget is spent. The column is assembled all-infeasible and its
    requests take the fault-carry rung of the degradation ladder; this
    exception is recorded (as a :class:`repro.faults.TaskFailure`), never
    silently swallowed."""

    def __init__(self, vehicle_id: int, attempts: int, cause: BaseException | None = None):
        self.vehicle_id = vehicle_id
        self.attempts = attempts
        self.__cause__ = cause
        super().__init__(
            f"quote column for vehicle {vehicle_id} failed after "
            f"{attempts} attempt(s): {cause!r}"
        )


class ShardSolveError(ReproError):
    """Raised when one shard's assignment solve still fails after the
    retry budget is spent. The shard is re-solved serially in the parent
    (:func:`repro.dispatch.sharding.solver.solve_sharded`); this exception
    records why the fan-out path gave up."""

    def __init__(self, shard_id: int, attempts: int, cause: BaseException | None = None):
        self.shard_id = shard_id
        self.attempts = attempts
        self.__cause__ = cause
        super().__init__(
            f"shard {shard_id} solve failed after {attempts} attempt(s): "
            f"{cause!r}"
        )


class ArenaAttachError(ReproError):
    """Raised when a worker cannot map a zero-copy shard block from the
    shared-memory arena (:mod:`repro.dispatch.sharding.shm`): the
    segment is missing (unlinked or never published), carries no arena
    header, or the ticket's generation is stale because its slot was
    republished. The shard executor treats it as non-retryable — the
    parent still holds the original matrix and re-solves the shard
    serially (the existing degradation-ladder rescue rung) instead of
    ever solving stale bytes.

    Message-only by design so it round-trips pickle across the process
    boundary unchanged."""


class FlushDeadlineExceededError(ReproError):
    """Raised when a flush exhausts its deadline budget
    (``flush_deadline_s``): the quote stage stops retrying and the
    simulator downgrades that flush to the greedy policy."""

    def __init__(self, deadline_s: float, spent_s: float):
        self.deadline_s = deadline_s
        self.spent_s = spent_s
        super().__init__(
            f"flush deadline budget exhausted: {spent_s:.3f}s charged "
            f"against a {deadline_s:.3f}s budget"
        )


class TreeBudgetExceeded(ReproError):
    """Raised when a kinetic-tree insertion exceeds its expansion budget —
    the reproduction's analogue of the paper's "can no longer finish in a
    reasonable time or exceeds the imposed memory limit" cutoff in the
    capacity experiments (Fig. 9(c))."""
