"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid vertex references."""


class DisconnectedError(GraphError):
    """Raised when a shortest-path query has no finite answer."""

    def __init__(self, source, target):
        self.source = source
        self.target = target
        super().__init__(f"no path from vertex {source} to vertex {target}")


class ScheduleError(ReproError):
    """Raised for structurally invalid schedules (e.g. dropoff before pickup)."""


class InfeasibleError(ReproError):
    """Raised when a scheduling algorithm is asked to produce a schedule
    but no valid schedule exists."""


class CapacityError(ReproError):
    """Raised when an operation would exceed a vehicle's seat capacity."""


class AssignmentInfeasibleError(ReproError):
    """Raised by the batch assignment solver when a caller demands a
    complete matching but infeasible cells make some rows unassignable —
    or when an assignment is costed against a pair the matrix marks
    infeasible. Carries the offending row indices so dispatch layers can
    report *which* requests could not be matched instead of silently
    dropping them."""

    def __init__(self, rows, message: str | None = None):
        self.rows = tuple(rows)
        if message is None:
            message = (
                "no feasible assignment for row(s) "
                + ", ".join(str(r) for r in self.rows)
            )
        super().__init__(message)


class SimulationError(ReproError):
    """Raised for inconsistent simulator state (e.g. events out of order)."""


class TreeBudgetExceeded(ReproError):
    """Raised when a kinetic-tree insertion exceeds its expansion budget —
    the reproduction's analogue of the paper's "can no longer finish in a
    reasonable time or exceeds the imposed memory limit" cutoff in the
    capacity experiments (Fig. 9(c))."""
