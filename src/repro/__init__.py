"""repro — reproduction of *Large Scale Real-time Ridesharing with
Service Guarantee on Road Networks* (Huang, Jin, Bastani & Wang, VLDB
2014; arXiv:1302.6666).

Quickstart::

    from repro import (
        grid_city, make_engine, ConstraintConfig,
        ShanghaiLikeWorkload, SimulationConfig, simulate,
    )

    city = grid_city(30, 30, seed=7)
    engine = make_engine(city)
    trips = ShanghaiLikeWorkload(city, seed=7).generate(
        num_trips=200, duration_seconds=3600)
    report = simulate(engine, SimulationConfig(num_vehicles=50), trips)
    print(report.summary())

Package map:

* :mod:`repro.roadnet` — road graphs, shortest-path engines, LRU caches,
  synthetic city generators;
* :mod:`repro.spatial` — grid index over moving vehicles;
* :mod:`repro.core` — requests, schedules, vehicles, the dispatcher and
  the **kinetic tree** (the paper's contribution);
* :mod:`repro.dispatch` — the **dispatch subsystem**: rolling-horizon
  request batching (:class:`BatchWindow`) and pluggable batch assignment
  policies behind :class:`DispatchPolicy` — ``greedy`` (the paper's
  sequential cheapest-quote; with ``batch_window_s=0`` it *is* immediate
  dispatch), ``lap`` (one optimal request x vehicle linear assignment per
  window via a pure-numpy Hungarian solver, after Simonetto et al.) and
  ``iterative`` (repeated assignment rounds re-quoting unassigned
  requests, after Vakayil et al.) and ``sharded`` (the lap solve
  federated over grid-region shards with concurrent per-shard solves
  and boundary reconciliation, :mod:`repro.dispatch.sharding`). Each
  flush runs the staged quote -> solve -> commit pipeline
  (:mod:`repro.dispatch.quoting`), the flush cadence is owned by a
  fixed or load-adaptive window controller
  (:mod:`repro.dispatch.adaptive`), and carry-over batching lets
  losing requests roll into the next window. Configure through
  :class:`SimulationConfig` (``dispatch_policy``, ``batch_window_s``,
  ``assignment_rounds``, ``num_shards``, ``shard_backend``,
  ``shard_boundary_cells``, ``quote_workers``, ``quote_overlap_s``,
  ``adaptive_window``, ``window_min_s``/``window_max_s``,
  ``carry_over``);
* :mod:`repro.algorithms` — brute force, branch & bound, MIP and
  insertion baselines;
* :mod:`repro.sim` — event-driven simulator, synthetic Shanghai-like
  workloads, metrics (ACRT / ART / occupancy);
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper (see DESIGN.md / EXPERIMENTS.md).
"""

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    BranchAndBound,
    BruteForce,
    KineticTreeAlgorithm,
    MixedIntegerProgramming,
    SchedulingAlgorithm,
    TwoPhaseInsertion,
    make_algorithm,
)
from repro.core import (
    AssignmentResult,
    ConstraintConfig,
    DEFAULT_CONSTRAINTS,
    Dispatcher,
    KineticAgent,
    KineticTree,
    KineticTrial,
    PAPER_CONSTRAINT_SWEEP,
    Quote,
    RescheduleAgent,
    ScheduleEvaluation,
    ScheduleResult,
    SchedulingProblem,
    Stop,
    StopKind,
    TreeNode,
    TripRequest,
    Vehicle,
    VehicleAgent,
    dropoff,
    evaluate_schedule,
    pickup,
)
from repro.dispatch import (
    BatchDispatcher,
    BatchResult,
    BatchWindow,
    DispatchPolicy,
    GreedyPolicy,
    IterativePolicy,
    LapPolicy,
    POLICY_REGISTRY,
    ShardedPolicy,
    ShardExecutor,
    ShardPartitioner,
    BoundaryReconciler,
    build_cost_matrix,
    make_policy,
    solve_assignment,
    solve_sharded,
)
from repro.roadnet import (
    DijkstraEngine,
    HubLabelEngine,
    HubLabels,
    LRUCache,
    MatrixEngine,
    RoadNetwork,
    ShortestPathCache,
    ShortestPathEngine,
    grid_city,
    make_engine,
    random_geometric_city,
    ring_radial_city,
)
from repro.sim import (
    Simulation,
    SimulationConfig,
    SimulationReport,
    ShanghaiLikeWorkload,
    TripSpec,
    burst_workload,
    simulate,
)
from repro.spatial import GridIndex

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # roadnet
    "RoadNetwork",
    "ShortestPathEngine",
    "DijkstraEngine",
    "MatrixEngine",
    "HubLabelEngine",
    "HubLabels",
    "LRUCache",
    "ShortestPathCache",
    "make_engine",
    "grid_city",
    "ring_radial_city",
    "random_geometric_city",
    # spatial
    "GridIndex",
    # core
    "ConstraintConfig",
    "PAPER_CONSTRAINT_SWEEP",
    "DEFAULT_CONSTRAINTS",
    "TripRequest",
    "Stop",
    "StopKind",
    "pickup",
    "dropoff",
    "evaluate_schedule",
    "ScheduleEvaluation",
    "SchedulingProblem",
    "ScheduleResult",
    "Vehicle",
    "KineticTree",
    "KineticTrial",
    "TreeNode",
    "Dispatcher",
    "VehicleAgent",
    "KineticAgent",
    "RescheduleAgent",
    "Quote",
    "AssignmentResult",
    # dispatch
    "BatchDispatcher",
    "BatchResult",
    "BatchWindow",
    "DispatchPolicy",
    "GreedyPolicy",
    "IterativePolicy",
    "LapPolicy",
    "POLICY_REGISTRY",
    "ShardedPolicy",
    "ShardExecutor",
    "ShardPartitioner",
    "BoundaryReconciler",
    "build_cost_matrix",
    "make_policy",
    "solve_assignment",
    "solve_sharded",
    # algorithms
    "SchedulingAlgorithm",
    "BruteForce",
    "BranchAndBound",
    "MixedIntegerProgramming",
    "TwoPhaseInsertion",
    "KineticTreeAlgorithm",
    "ALGORITHM_REGISTRY",
    "make_algorithm",
    # sim
    "Simulation",
    "simulate",
    "SimulationConfig",
    "SimulationReport",
    "ShanghaiLikeWorkload",
    "TripSpec",
    "burst_workload",
]
