"""Paper-level constants shared across the library.

All values trace to Section VI (Experimental Design) of Huang et al.,
"Large Scale Real-time Ridesharing with Service Guarantee on Road
Networks" (VLDB 2014).
"""

#: Constant driving speed assumed by the paper, in meters per second
#: ("approximately 48 kilometers/hour").
SPEED_MPS = 14.0

#: Default maximal waiting time ``w`` (Table I default: 10 minutes).
DEFAULT_WAIT_SECONDS = 10 * 60.0

#: Default service (detour) constraint ``epsilon`` (Table I default: 20%).
DEFAULT_DETOUR_EPSILON = 0.20

#: Default vehicle capacity for the four-algorithm comparison (Table I).
DEFAULT_CAPACITY_FOUR_ALGO = 4

#: Default vehicle capacity for the tree-variant comparison (Table II).
DEFAULT_CAPACITY_TREE = 6

#: Sentinel used for unlimited capacity runs (Fig. 9(c), "unlim").
UNLIMITED_CAPACITY = None

#: Size of the shortest-*distance* LRU cache. The paper stores "up to ten
#: million shortest distances"; the default here is scaled for a Python
#: process but is configurable everywhere it is used.
DEFAULT_DISTANCE_CACHE_SIZE = 1_000_000

#: Size of the shortest-*path* LRU cache ("up to ten thousand shortest
#: paths").
DEFAULT_PATH_CACHE_SIZE = 10_000

#: Size of the source-keyed partial-row cache backing batched fan-out
#: queries (``distance_many``). Rows are whole settled regions, so far
#: fewer entries are needed than for point-to-point pairs.
DEFAULT_ROW_CACHE_SIZE = 4_096

#: Interval (seconds) at which vehicles report their location to the grid
#: index ("around 17,000 taxis update their locations every 20 to 60
#: seconds").
DEFAULT_LOCATION_REPORT_SECONDS = 30.0

#: Paper's Shanghai dataset summary statistics, used to calibrate the
#: synthetic workload (see ``repro.sim.workload``).
SHANGHAI_NUM_VERTICES = 122_319
SHANGHAI_NUM_EDGES = 188_426
SHANGHAI_NUM_TAXIS = 17_000
SHANGHAI_NUM_TRIPS = 432_327
SHANGHAI_DAY_SECONDS = 24 * 3600.0
