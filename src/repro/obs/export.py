"""Exporters: Chrome trace-event JSONL and ``metrics.json``.

Trace schema
------------

One JSON object per line (JSONL), each a Chrome *complete* event
(``"ph": "X"``) as defined by the Trace Event Format — the shape
Perfetto's legacy-JSON importer loads directly (it tolerates the
missing enclosing array; wrap the lines in ``[...]`` for a strict
viewer). Per event:

``name``
    span name (``flush``, ``solve``, ``shard.solve``, ...);
``cat``
    span category (``flush``, ``quote``, ``engine``, ...);
``ph`` / ``pid``
    always ``"X"`` / ``1``;
``tid``
    the tracer's thread ordinal (0 = simulator thread);
``ts`` / ``dur``
    start and duration in integer microseconds, relative to the
    tracer's first recorded span;
``args``
    the span's key/value annotations plus ``span_id`` and
    ``parent_id`` (the nesting structure ``tools/trace_report.py``
    reassembles).

The schema is pinned by a golden-file test
(``tests/obs/test_export.py``); extend it additively.

Prometheus exposition
---------------------

:func:`write_prom_text` renders the registry in the Prometheus text
exposition format (version 0.0.4) so a scrape target — or a one-shot
``textfile`` collector drop — can serve the run's instruments. Dotted
instrument names become underscore-joined metric names prefixed with
``repro_``; counters gain the conventional ``_total`` suffix; each
histogram emits cumulative ``_bucket{le="..."}`` series at its
nonempty log-bucket boundaries plus ``le="+Inf"``, ``_sum`` and
``_count``.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.trace import SpanRecord


def chrome_trace_events(records: Iterable[SpanRecord]) -> list[dict]:
    """Flatten span records into Chrome trace-event dicts.

    Timestamps are rebased to the earliest span so traces start at
    ``ts=0`` whatever ``perf_counter``'s epoch was.
    """
    records = list(records)
    if not records:
        return []
    base = min(r.start_s for r in records)
    events = []
    for r in sorted(records, key=lambda r: (r.start_s, r.span_id)):
        events.append(
            {
                "name": r.name,
                "cat": r.cat,
                "ph": "X",
                "pid": 1,
                "tid": r.thread,
                "ts": round((r.start_s - base) * 1e6),
                "dur": round(r.dur_s * 1e6),
                "args": {
                    **r.args,
                    "span_id": r.span_id,
                    "parent_id": r.parent_id,
                },
            }
        )
    return events


def write_chrome_trace(records: Iterable[SpanRecord], path: str) -> int:
    """Write one trace-event object per line; returns the event count."""
    events = chrome_trace_events(records)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def read_chrome_trace(path: str) -> list[dict]:
    """Read a JSONL trace back (blank lines ignored); the CLI's loader.

    Also accepts the strict array form (a file whose first character is
    ``[``) so hand-wrapped traces keep working.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        return json.loads(stripped)
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """Dotted instrument name -> legal Prometheus metric name."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return prefix + sanitized


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    return f"{value:.9g}"


def prom_text_lines(registry, prefix: str = "repro_") -> list[str]:
    """The registry as Prometheus text-exposition lines (no trailing
    newline handling — :func:`write_prom_text` joins them)."""
    snapshot = registry.snapshot()
    lines: list[str] = []
    for name in sorted(snapshot["counters"]):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot["gauges"]):
        value = snapshot["gauges"][name]
        if value is None:
            continue  # never set: nothing meaningful to expose
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name in sorted(snapshot["histograms"]):
        snap = snapshot["histograms"][name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for idx, bucket_count in enumerate(snap.counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if idx >= len(snap.counts) - 1:
                continue  # overflow bucket folds into +Inf below
            upper = snap.lo * snap.growth ** idx if idx else snap.lo
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(upper)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {snap.count}')
        lines.append(f"{metric}_sum {_prom_value(snap.total)}")
        lines.append(f"{metric}_count {snap.count}")
    return lines


def write_prom_text(registry, path: str, prefix: str = "repro_") -> int:
    """Write the registry in Prometheus text exposition format;
    returns the number of sample/metadata lines written."""
    lines = prom_text_lines(registry, prefix)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
        handle.write("\n")
    return len(lines)


def write_metrics_json(registry, path: str, extra: dict | None = None) -> dict:
    """Write the registry summary (plus optional ``extra`` context —
    e.g. the simulation report summary) as ``metrics.json``; returns
    the document."""
    document = dict(registry.as_dict())
    if extra:
        document["context"] = extra
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
