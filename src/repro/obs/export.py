"""Exporters: Chrome trace-event JSONL and ``metrics.json``.

Trace schema
------------

One JSON object per line (JSONL), each a Chrome *complete* event
(``"ph": "X"``) as defined by the Trace Event Format — the shape
Perfetto's legacy-JSON importer loads directly (it tolerates the
missing enclosing array; wrap the lines in ``[...]`` for a strict
viewer). Per event:

``name``
    span name (``flush``, ``solve``, ``shard.solve``, ...);
``cat``
    span category (``flush``, ``quote``, ``engine``, ...);
``ph`` / ``pid``
    always ``"X"`` / ``1``;
``tid``
    the tracer's thread ordinal (0 = simulator thread);
``ts`` / ``dur``
    start and duration in integer microseconds, relative to the
    tracer's first recorded span;
``args``
    the span's key/value annotations plus ``span_id`` and
    ``parent_id`` (the nesting structure ``tools/trace_report.py``
    reassembles).

The schema is pinned by a golden-file test
(``tests/obs/test_export.py``); extend it additively.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.trace import SpanRecord


def chrome_trace_events(records: Iterable[SpanRecord]) -> list[dict]:
    """Flatten span records into Chrome trace-event dicts.

    Timestamps are rebased to the earliest span so traces start at
    ``ts=0`` whatever ``perf_counter``'s epoch was.
    """
    records = list(records)
    if not records:
        return []
    base = min(r.start_s for r in records)
    events = []
    for r in sorted(records, key=lambda r: (r.start_s, r.span_id)):
        events.append(
            {
                "name": r.name,
                "cat": r.cat,
                "ph": "X",
                "pid": 1,
                "tid": r.thread,
                "ts": round((r.start_s - base) * 1e6),
                "dur": round(r.dur_s * 1e6),
                "args": {
                    **r.args,
                    "span_id": r.span_id,
                    "parent_id": r.parent_id,
                },
            }
        )
    return events


def write_chrome_trace(records: Iterable[SpanRecord], path: str) -> int:
    """Write one trace-event object per line; returns the event count."""
    events = chrome_trace_events(records)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def read_chrome_trace(path: str) -> list[dict]:
    """Read a JSONL trace back (blank lines ignored); the CLI's loader.

    Also accepts the strict array form (a file whose first character is
    ``[``) so hand-wrapped traces keep working.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        return json.loads(stripped)
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def write_metrics_json(registry, path: str, extra: dict | None = None) -> dict:
    """Write the registry summary (plus optional ``extra`` context —
    e.g. the simulation report summary) as ``metrics.json``; returns
    the document."""
    document = dict(registry.as_dict())
    if extra:
        document["context"] = extra
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
