"""Service-level objectives over windowed telemetry.

The paper's headline claim is a *service guarantee*: every accepted
request is picked up within its wait budget and carried within its
detour bound. This module turns that guarantee into an operational,
continuously evaluated quantity — the way a live dispatch service
would monitor it — instead of a single end-of-run audit.

Objective grammar
-----------------

An SLO spec is a comma-joined list of ``metric op threshold`` clauses::

    service_rate>=0.9,wait_p99<=300,detour_compliance>=0.99

Supported operators are ``>=`` and ``<=``; supported metrics:

``service_rate``
    assigned / settled requests in the window;
``wait_compliance``
    fraction of pickups that happened at or before the request's
    pickup deadline (Definition 2's waiting-time guarantee);
``detour_compliance``
    fraction of dropoffs whose ride time stayed within the request's
    ``(1 + eps) d(s, e)`` bound (the detour guarantee);
``wait_p50`` / ``wait_p99``
    request-to-assignment-commit latency percentile in seconds (what a
    rider experiences between asking and being told their vehicle).

All five are *simulated-time* quantities: a fixed seed reproduces the
per-window values — and therefore the whole ``slo.json`` verdict —
exactly (pinned in ``tests/sim/test_live_telemetry.py``).

Burn-rate semantics
-------------------

Each objective is also evaluated as an error-budget *burn rate*, the
multi-window scheme SRE practice uses to separate "one bad window"
from "we are steadily spending the budget":

* for a ``ratio >= target`` objective the budget is ``1 - target`` and
  a window's burn is ``(1 - value) / (1 - target)`` — burn 1.0 means
  failing at exactly the tolerated rate, higher means faster;
* for a ``latency <= bound`` objective the burn is ``value / bound``;
* the **fast** burn is the last window's, the **slow** burn is
  computed over the merged last ``burn_windows`` windows (counts and
  histogram buckets aggregate, so the slow burn is exact, not an
  average of averages);
* a window raises a burn **alert** only when fast *and* slow burn both
  exceed ``burn_threshold`` — a transient spike (fast only) or a slow
  drift that has already recovered (slow only) does not.

Windows with no eligible traffic produce ``no_data`` verdicts and burn
``None``; they never count against an objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import HistogramSnapshot, merge_snapshots

#: metric name -> kind ("ratio" objectives consume counter deltas,
#: "latency" objectives consume the assign-latency window histogram).
SLO_METRICS: dict[str, str] = {
    "service_rate": "ratio",
    "wait_compliance": "ratio",
    "detour_compliance": "ratio",
    "wait_p50": "latency",
    "wait_p99": "latency",
}

#: Counter names (repro.sim.metrics) each ratio metric reads, as
#: (numerator-good derivation): (total counter, bad counter). ``good``
#: is ``total - bad``.
_RATIO_COUNTERS: dict[str, tuple[str, str]] = {
    "service_rate": ("requests.settled", "requests.rejected"),
    "wait_compliance": ("pickup.count", "pickup.late"),
    "detour_compliance": ("dropoff.count", "dropoff.detour_violation"),
}

_LATENCY_QUANTILE: dict[str, float] = {"wait_p50": 0.50, "wait_p99": 0.99}

#: The histogram every latency objective reads.
LATENCY_INSTRUMENT = "assign.latency_s"


@dataclass(frozen=True, slots=True)
class SloObjective:
    """One parsed clause: ``metric op threshold``."""

    metric: str
    op: str
    threshold: float

    @property
    def label(self) -> str:
        return f"{self.metric}{self.op}{self.threshold:g}"

    @property
    def kind(self) -> str:
        return SLO_METRICS[self.metric]

    def holds(self, value: float) -> bool:
        if self.op == ">=":
            return value >= self.threshold
        return value <= self.threshold


def parse_slo_spec(spec: str | None) -> tuple[SloObjective, ...]:
    """Parse an SLO spec string; ``None``/empty disables (empty tuple).

    Raises :class:`ValueError` on unknown metrics, operators or
    malformed thresholds — at config time, not mid-run.
    """
    if spec is None or not spec.strip():
        return ()
    objectives = []
    seen = set()
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        for op in (">=", "<="):
            if op in clause:
                name, _, value = clause.partition(op)
                break
        else:
            raise ValueError(
                f"SLO clause {clause!r} needs '>=' or '<=' "
                "(grammar: metric>=value, comma-joined)"
            )
        name = name.strip()
        if name not in SLO_METRICS:
            known = ", ".join(sorted(SLO_METRICS))
            raise ValueError(
                f"unknown SLO metric {name!r}; known metrics: {known}"
            )
        try:
            threshold = float(value)
        except ValueError as error:
            raise ValueError(
                f"SLO clause {clause!r}: threshold {value.strip()!r} is "
                "not a number"
            ) from error
        if SLO_METRICS[name] == "ratio" and not 0.0 <= threshold <= 1.0:
            raise ValueError(
                f"SLO clause {clause!r}: {name} is a fraction; the "
                "threshold must be in [0, 1]"
            )
        if SLO_METRICS[name] == "latency" and threshold <= 0:
            raise ValueError(
                f"SLO clause {clause!r}: latency bounds must be positive"
            )
        objective = SloObjective(name, op, threshold)
        if objective.label in seen:
            raise ValueError(f"duplicate SLO clause {objective.label!r}")
        seen.add(objective.label)
        objectives.append(objective)
    if not objectives:
        raise ValueError(f"SLO spec {spec!r} contains no clauses")
    return tuple(objectives)


def _ratio_value(metric: str, counters: dict) -> float | None:
    total_name, bad_name = _RATIO_COUNTERS[metric]
    total = counters.get(total_name, 0)
    if not total:
        return None
    return (total - counters.get(bad_name, 0)) / total


def _burn(objective: SloObjective, value: float | None) -> float | None:
    """Error-budget burn rate of one window (or merged window group)."""
    if value is None:
        return None
    if objective.kind == "ratio" and objective.op == ">=":
        budget = 1.0 - objective.threshold
        error = 1.0 - value
        if budget <= 0.0:
            return 0.0 if error <= 0.0 else math.inf
        return error / budget
    if objective.kind == "latency" and objective.op == "<=":
        return value / objective.threshold
    return None  # inverted objectives: verdicts only, no burn semantics


class SloEngine:
    """Evaluates parsed objectives over the live layer's windows.

    Fed one window at a time (counter deltas + histogram deltas from
    :class:`repro.obs.live.TimeSeriesRecorder`); :meth:`finalize`
    renders the machine-readable verdict document ``slo.json``
    carries. Strictly write-only from the pipeline's point of view —
    nothing reads the engine back into a dispatch decision.
    """

    def __init__(
        self,
        objectives: tuple[SloObjective, ...],
        window_s: float,
        burn_windows: int = 5,
        burn_threshold: float = 1.0,
    ):
        if not objectives:
            raise ValueError("SloEngine needs at least one objective")
        if burn_windows < 1:
            raise ValueError("burn_windows must be >= 1")
        self.objectives = objectives
        self.window_s = window_s
        self.burn_windows = burn_windows
        self.burn_threshold = burn_threshold
        #: Rolling raw material for the slow burn: (counters, latency
        #: delta) per window, bounded to the last ``burn_windows``.
        self._recent: list[tuple[dict, HistogramSnapshot | None]] = []
        #: Whole-run accumulation for the overall verdict.
        self._total_counters: dict[str, int] = {}
        self._latency_deltas: list[HistogramSnapshot] = []
        self._windows: list[dict] = []
        self._alerts = 0

    # ------------------------------------------------------------------
    def _window_value(
        self,
        objective: SloObjective,
        counters: dict,
        latency: HistogramSnapshot | None,
    ) -> float | None:
        if objective.kind == "ratio":
            return _ratio_value(objective.metric, counters)
        if latency is None or not latency.count:
            return None
        return latency.quantile(_LATENCY_QUANTILE[objective.metric])

    def _slow_material(self) -> tuple[dict, HistogramSnapshot | None]:
        """Merged counters and latency over the last K windows —
        computed once per window, shared by every objective."""
        merged: dict[str, int] = {}
        for counters, _ in self._recent:
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        deltas = [d for _, d in self._recent if d is not None and d.count]
        latency = merge_snapshots(deltas) if deltas else None
        return merged, latency

    # ------------------------------------------------------------------
    def observe_window(
        self,
        index: int,
        t_start: float,
        t_end: float,
        counters: dict,
        histograms: dict,
    ) -> dict:
        """Fold one completed window in; returns its verdict row."""
        latency = histograms.get(LATENCY_INSTRUMENT)
        needed = {
            name
            for metric in _RATIO_COUNTERS.values()
            for name in metric
        }
        window_counters = {
            name: counters.get(name, 0) for name in needed
        }
        self._recent.append((window_counters, latency))
        if len(self._recent) > self.burn_windows:
            self._recent.pop(0)
        for name, value in window_counters.items():
            self._total_counters[name] = (
                self._total_counters.get(name, 0) + value
            )
        if latency is not None and latency.count:
            self._latency_deltas.append(latency)

        metrics: dict[str, float | None] = {}
        verdicts: dict[str, str] = {}
        burn: dict[str, dict] = {}
        alert_raised = False
        slow_counters, slow_latency = self._slow_material()
        for objective in self.objectives:
            value = self._window_value(objective, window_counters, latency)
            metrics[objective.metric] = _round(value)
            if value is None:
                verdicts[objective.label] = "no_data"
            else:
                verdicts[objective.label] = (
                    "pass" if objective.holds(value) else "fail"
                )
            fast = _burn(objective, value)
            slow = _burn(
                objective,
                self._window_value(objective, slow_counters, slow_latency),
            )
            alerting = (
                fast is not None
                and slow is not None
                and fast > self.burn_threshold
                and slow > self.burn_threshold
            )
            burn[objective.label] = {
                "fast": _round(fast),
                "slow": _round(slow),
                "alert": alerting,
            }
            alert_raised = alert_raised or alerting
        if alert_raised:
            self._alerts += 1
        row = {
            "window": index,
            "t_start": _round(t_start),
            "t_end": _round(t_end),
            "metrics": metrics,
            "verdicts": verdicts,
            "burn": burn,
        }
        self._windows.append(row)
        return row

    # ------------------------------------------------------------------
    def finalize(self, spec: str | None = None) -> dict:
        """The machine-readable verdict document (``slo.json``)."""
        overall_latency = (
            merge_snapshots(self._latency_deltas)
            if self._latency_deltas
            else None
        )
        objectives = []
        doc_pass = True
        for objective in self.objectives:
            value = self._window_value(
                objective, self._total_counters, overall_latency
            )
            if value is None:
                overall_pass = None  # no eligible traffic: not violated
            else:
                overall_pass = objective.holds(value)
                doc_pass = doc_pass and overall_pass
            tallies = {"pass": 0, "fail": 0, "no_data": 0}
            alerts = 0
            worst_fast = None
            for row in self._windows:
                tallies[row["verdicts"][objective.label]] += 1
                entry = row["burn"][objective.label]
                if entry["alert"]:
                    alerts += 1
                if entry["fast"] is not None and (
                    worst_fast is None or entry["fast"] > worst_fast
                ):
                    worst_fast = entry["fast"]
            objectives.append(
                {
                    "metric": objective.metric,
                    "op": objective.op,
                    "threshold": objective.threshold,
                    "label": objective.label,
                    "overall_value": _round(value),
                    "overall_pass": overall_pass,
                    "windows": tallies,
                    "burn_alerts": alerts,
                    "worst_fast_burn": _round(worst_fast),
                }
            )
        return {
            "spec": spec,
            "window_s": self.window_s,
            "burn_windows": self.burn_windows,
            "burn_threshold": self.burn_threshold,
            "num_windows": len(self._windows),
            "alert_windows": self._alerts,
            "objectives": objectives,
            "windows": list(self._windows),
            "pass": doc_pass,
        }


def _round(value: float | None, digits: int = 6) -> float | None:
    """Stable rounding for the verdict document (``inf`` survives)."""
    if value is None:
        return None
    if math.isinf(value):
        return value
    return round(value, digits)
