"""Process resource monitoring for long-lived (soak) runs.

The ROADMAP's always-on dispatch service needs *bounded-memory
evidence*: a soak run must show that RSS, allocator peaks and GC
behaviour flatten out rather than creep. :class:`ResourceMonitor`
samples those signals into the run's :class:`~repro.obs.metrics.
MetricsRegistry` so they ride the same windowed time series as the
dispatch metrics (:mod:`repro.obs.live`) and the same ``metrics.json``
export.

What gets sampled (all wall-clock / process-level, so these values
appear in time-series rows and ``metrics.json`` but are deliberately
excluded from the deterministic ``slo.json`` verdict):

* ``resource.rss_bytes`` (gauge) — resident set size from
  ``/proc/self/statm`` (silently absent on platforms without procfs);
* ``resource.tracemalloc_peak_bytes`` (gauge) — traced-memory peak,
  sampled **only if tracemalloc is already tracing**. The monitor
  never *starts* tracemalloc: tracing multiplies allocation cost and
  would blow the live layer's ≤5 % overhead budget. Opt in from the
  caller (e.g. a soak harness) with ``tracemalloc.start()``.
* ``gc.pause_s`` (histogram) / ``gc.collections`` (counter) —
  stop-the-world collection pauses, timed via ``gc.callbacks``;
* ``pool.queue_depth`` (gauge) — total in-flight submissions across
  the registered worker-pool probes (see
  :meth:`repro.dispatch.sharding.executor.WorkerPool.queue_depth`).

Sampling is pull-based — the live layer calls :meth:`sample` once per
window roll — except GC pauses, which are pushed by the interpreter's
collector from whatever thread triggered collection (instrument
mutation is thread-safe). Call :meth:`close` to detach the GC hook.
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc

from repro.obs.metrics import MetricsRegistry

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes(handle=None) -> int | None:
    """Resident set size of this process, or ``None`` without procfs.

    ``handle`` is an already-open ``/proc/self/statm`` to rewind and
    re-read — procfs files re-evaluate on read, and skipping the
    ``open`` matters at one sample per window roll.
    """
    try:
        if handle is not None:
            handle.seek(0)
            fields = handle.read().split()
        else:
            with open("/proc/self/statm", "r", encoding="ascii") as fresh:
                fields = fresh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


class ResourceMonitor:
    """Samples process health into the metrics registry.

    ``depth_probes`` is an iterable of zero-argument callables, each
    returning the current in-flight depth of one worker pool (or
    ``None`` when that pool does not exist yet — pools are lazy).
    """

    def __init__(self, registry: MetricsRegistry, depth_probes=()):
        self.registry = registry
        self.depth_probes = list(depth_probes)
        self._rss = registry.gauge("resource.rss_bytes")
        self._queue_depth = registry.gauge("pool.queue_depth")
        self._gc_pause = registry.histogram("gc.pause_s")
        self._gc_count = registry.counter("gc.collections")
        self._gc_started: float | None = None
        self._closed = False
        try:
            self._statm = open("/proc/self/statm", "r", encoding="ascii")
        except OSError:  # pragma: no cover - no procfs
            self._statm = None
        gc.callbacks.append(self._on_gc)

    # ------------------------------------------------------------------
    def _on_gc(self, phase: str, info: dict) -> None:
        # Runs inside the collector on an arbitrary thread; must never
        # raise (an exception here would surface at a random gc point).
        try:
            if phase == "start":
                self._gc_started = time.perf_counter()
            elif phase == "stop" and self._gc_started is not None:
                self._gc_pause.add(time.perf_counter() - self._gc_started)
                self._gc_count.inc()
                self._gc_started = None
        except Exception:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Take one pull-based sample (called once per window roll)."""
        rss = read_rss_bytes(self._statm)
        if rss is not None:
            self._rss.set(rss)
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.registry.gauge("resource.tracemalloc_peak_bytes").set(peak)
        depth = None
        for probe in self.depth_probes:
            value = probe()
            if value is not None:
                depth = value if depth is None else depth + value
        if depth is not None:
            self._queue_depth.set(depth)

    def close(self) -> None:
        """Detach the GC hook and procfs handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            gc.callbacks.remove(self._on_gc)
        except ValueError:  # pragma: no cover - already removed
            pass
        if self._statm is not None:
            self._statm.close()
            self._statm = None
