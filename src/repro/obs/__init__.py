"""repro.obs — the one instrumentation plane for the flush pipeline.

Three pieces, one rule:

* :class:`Tracer` — nested, thread-safe spans over the staged flush
  (``flush → snapshot → quote → solve → commit``, per-shard and
  per-worker children, engine-level fan-out spans). Disabled tracers
  (:data:`NULL_TRACER`) are literal no-ops: no span is ever allocated.
* :class:`MetricsRegistry` — named counters, gauges and streaming
  log-bucket :class:`Histogram` instruments (p50/p90/p99 without
  storing samples), serialized to ``metrics.json``.
* exporters (:mod:`repro.obs.export`) — Chrome trace-event JSONL
  (Perfetto-loadable) and the metrics summary; analysis helpers in
  :mod:`repro.obs.report` back ``tools/trace_report.py``.

The rule: **telemetry never steers dispatch**. Spans and instruments
are write-only for the pipeline; no assignment, window, or commit
decision may read them. The adaptive controller's wall-clock latency
guard remains the lone, documented exception (``docs/determinism.md``)
and does not go through this package. That is why every determinism
pin holds bit-for-bit with tracing enabled.
"""

from repro.obs.export import (
    chrome_trace_events,
    read_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanRecord,
    Tracer,
    clock,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace_events",
    "clock",
    "read_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
]
