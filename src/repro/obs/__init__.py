"""repro.obs — the one instrumentation plane for the flush pipeline.

Three pieces, one rule:

* :class:`Tracer` — nested, thread-safe spans over the staged flush
  (``flush → snapshot → quote → solve → commit``, per-shard and
  per-worker children, engine-level fan-out spans). Disabled tracers
  (:data:`NULL_TRACER`) are literal no-ops: no span is ever allocated.
* :class:`MetricsRegistry` — named counters, gauges and streaming
  log-bucket :class:`Histogram` instruments (p50/p90/p99 without
  storing samples), serialized to ``metrics.json``.
* exporters (:mod:`repro.obs.export`) — Chrome trace-event JSONL
  (Perfetto-loadable), the metrics summary, and Prometheus text
  exposition; analysis helpers in :mod:`repro.obs.report` back
  ``tools/trace_report.py``.

Layered on top, the live-ops plane: :mod:`repro.obs.live` rolls the
registry into sim-time windows (JSONL time series, rolling p50/p99),
:mod:`repro.obs.slo` evaluates the paper's service guarantee as
configurable objectives with burn-rate alerting, and
:mod:`repro.obs.resources` samples RSS/GC/queue-depth health into the
same stream.

The rule: **telemetry never steers dispatch**. Spans and instruments
are write-only for the pipeline; no assignment, window, or commit
decision may read them. The adaptive controller's wall-clock latency
guard remains the lone, documented exception (``docs/determinism.md``)
and does not go through this package. That is why every determinism
pin holds bit-for-bit with tracing enabled.
"""

from repro.obs.export import (
    chrome_trace_events,
    prom_text_lines,
    read_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
    write_prom_text,
)
from repro.obs.live import LiveTelemetry, TimeSeriesRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.resources import ResourceMonitor
from repro.obs.slo import SloEngine, SloObjective, parse_slo_spec
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanRecord,
    Tracer,
    clock,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LiveTelemetry",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "ResourceMonitor",
    "SloEngine",
    "SloObjective",
    "Span",
    "SpanRecord",
    "TimeSeriesRecorder",
    "Tracer",
    "chrome_trace_events",
    "clock",
    "merge_snapshots",
    "parse_slo_spec",
    "prom_text_lines",
    "read_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
    "write_prom_text",
]
