"""Trace analysis: per-stage breakdowns and slowest-flush drilldowns.

The library behind ``tools/trace_report.py`` and
``examples/trace_flush.py``: pure functions over the event dicts
:func:`repro.obs.export.read_chrome_trace` loads (or
:func:`~repro.obs.export.chrome_trace_events` produces in-process).
"""

from __future__ import annotations

from collections import defaultdict


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = q * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def stage_breakdown(events: list[dict]) -> list[dict]:
    """Aggregate events by span name: count, total/mean/p50/p99 ms.

    Rows are sorted by total time descending — the "where does flush
    time go" table.
    """
    by_name: dict[str, list[float]] = defaultdict(list)
    for event in events:
        by_name[event["name"]].append(event.get("dur", 0) / 1000.0)
    rows = []
    for name, durs in by_name.items():
        durs.sort()
        rows.append(
            {
                "name": name,
                "count": len(durs),
                "total_ms": sum(durs),
                "mean_ms": sum(durs) / len(durs),
                "p50_ms": _percentile(durs, 0.50),
                "p99_ms": _percentile(durs, 0.99),
                "max_ms": durs[-1],
            }
        )
    rows.sort(key=lambda r: -r["total_ms"])
    return rows


def slowest_flushes(events: list[dict], top: int = 5) -> list[dict]:
    """The ``top`` slowest ``flush`` spans, each with its child spans.

    Children are reassembled from ``args.parent_id`` (direct children
    only), sorted by start time — the per-flush quote/solve/commit
    decomposition.
    """
    children: dict[str, list[dict]] = defaultdict(list)
    for event in events:
        parent = event.get("args", {}).get("parent_id")
        if parent is not None:
            children[parent].append(event)
    flushes = [e for e in events if e["name"] == "flush"]
    flushes.sort(key=lambda e: -e.get("dur", 0))
    out = []
    for flush in flushes[:top]:
        kids = sorted(
            children.get(flush["args"]["span_id"], ()),
            key=lambda e: e.get("ts", 0),
        )
        out.append(
            {
                "dur_ms": flush.get("dur", 0) / 1000.0,
                "args": {
                    k: v
                    for k, v in flush.get("args", {}).items()
                    if k not in ("span_id", "parent_id")
                },
                "children": [
                    {
                        "name": kid["name"],
                        "dur_ms": kid.get("dur", 0) / 1000.0,
                    }
                    for kid in kids
                ],
            }
        )
    return out


def render_stage_table(rows: list[dict]) -> str:
    """Fixed-width text table of a :func:`stage_breakdown` result."""
    lines = [
        f"{'span':24s} {'count':>7s} {'total_ms':>10s} {'mean_ms':>9s} "
        f"{'p50_ms':>9s} {'p99_ms':>9s} {'max_ms':>9s}",
        "-" * 82,
    ]
    for row in rows:
        lines.append(
            f"{row['name']:24s} {row['count']:>7d} "
            f"{row['total_ms']:>10.3f} {row['mean_ms']:>9.3f} "
            f"{row['p50_ms']:>9.3f} {row['p99_ms']:>9.3f} "
            f"{row['max_ms']:>9.3f}"
        )
    return "\n".join(lines)


def render_slowest(flushes: list[dict]) -> str:
    """Text drilldown of a :func:`slowest_flushes` result."""
    lines = []
    for rank, flush in enumerate(flushes, 1):
        context = ", ".join(
            f"{k}={v}" for k, v in sorted(flush["args"].items())
        )
        lines.append(
            f"#{rank}  flush {flush['dur_ms']:.3f} ms"
            + (f"  ({context})" if context else "")
        )
        for kid in flush["children"]:
            lines.append(f"      {kid['name']:20s} {kid['dur_ms']:>9.3f} ms")
    return "\n".join(lines) if lines else "(no flush spans in trace)"
