"""Rolling-window live telemetry over the metrics registry.

PR 6 gave the simulator end-of-run evidence: one registry dump, one
trace file. An always-on dispatch service needs the *rolling* view —
throughput, assign-latency p50/p99, guarantee compliance and resource
headroom per interval — which this module derives from the same
cumulative instruments via the snapshot/delta algebra in
:mod:`repro.obs.metrics`.

Windows are **simulated-time** intervals: the event loop calls
:meth:`LiveTelemetry.advance` with each event's timestamp, and every
elapsed ``window_s`` of sim time closes a window. Closing a window

1. samples the resource monitor (if enabled),
2. takes a registry snapshot and diffs it against the previous one
   (counter deltas, per-window histogram deltas, current gauges),
3. appends the window's histogram deltas to a bounded ring of the last
   ``ring`` windows, whose merge answers *rolling* p50/p99 without
   ever storing samples,
4. emits one JSONL row (``--timeseries-out``), feeds the SLO engine,
   and — every ``live_report_every`` windows — prints one console
   status line (``--live-report``).

Wall-clock quantities (stage timings, resource gauges) appear in the
rows; the SLO engine consumes only sim-time metrics so its verdict is
seed-reproducible (see :mod:`repro.obs.slo`).

The standing contract holds: this layer is write-only. It reads
instruments and the event clock, and steers nothing — a run with the
live layer fully enabled is bit-identical to one without it
(determinism contract 9, pinned in
``tests/sim/test_live_telemetry.py``).
"""

from __future__ import annotations

import json
from collections import deque

from repro.obs.metrics import (
    HistogramSnapshot,
    MetricsRegistry,
    _walk_quantile_items,
)
from repro.obs.resources import ResourceMonitor
from repro.obs.slo import SloEngine, parse_slo_spec

#: Counter whose per-window delta defines row throughput.
THROUGHPUT_COUNTER = "requests.settled"
#: Histogram surfaced in the console line's rolling p99.
LATENCY_INSTRUMENT = "assign.latency_s"


class _RollingRing:
    """The last K window deltas of one histogram, with an incremental
    *sparse* bucket sum so each roll pays O(nonzero buckets) for the
    entering and leaving window only — never a K-way merge, never a
    full 134-slot scan."""

    __slots__ = ("maxlen", "parts", "buckets", "count", "total")

    def __init__(self, maxlen: int):
        self.maxlen = maxlen
        self.parts: deque = deque()
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def append(self, snap: HistogramSnapshot) -> None:
        self.parts.append(snap)
        if snap.count:
            buckets = self.buckets
            for i, n in enumerate(snap.counts):
                if n:
                    buckets[i] = buckets.get(i, 0) + n
            self.count += snap.count
            self.total += snap.total
        if len(self.parts) > self.maxlen:
            old = self.parts.popleft()
            if old.count:
                buckets = self.buckets
                for i, n in enumerate(old.counts):
                    if n:
                        left = buckets[i] - n
                        if left:
                            buckets[i] = left
                        else:
                            del buckets[i]
                self.count -= old.count
                self.total -= old.total

    def summary(self) -> dict:
        """Rolling p50/p99 over the ring (caller guards count > 0)."""
        live = [s for s in self.parts if s.count]
        scheme = live[0]
        p50, p99 = _walk_quantile_items(
            sorted(self.buckets.items()),
            self.count,
            (0.50, 0.99),
            scheme.lo,
            scheme.growth,
            min(s.min for s in live),
            max(s.max for s in live),
        )
        return {
            "windows": len(self.parts),
            "count": self.count,
            "p50": p50,
            "p99": p99,
        }


class TimeSeriesRecorder:
    """Turns cumulative instruments into per-window JSONL rows.

    One instance per run. ``start_time`` anchors window 0 (the first
    request's timestamp, so rows align with the workload rather than
    with sim epoch zero). ``observers`` are called once per closed
    window with ``(row, counter_deltas, histogram_deltas)`` — the SLO
    engine subscribes this way.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        window_s: float,
        start_time: float,
        ring: int = 5,
        out_path: str | None = None,
        live_report_every: int = 0,
        resource_monitor: ResourceMonitor | None = None,
        print_fn=print,
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if ring < 1:
            raise ValueError("ring must be >= 1")
        self.registry = registry
        self.window_s = window_s
        self.ring = ring
        self.out_path = out_path
        self.live_report_every = live_report_every
        self.resource_monitor = resource_monitor
        self.observers = []
        self.rows: list[dict] = []
        self._print = print_fn
        self._window_index = 0
        self._window_start = start_time
        self._prev = registry.snapshot()
        self._rings: dict[str, _RollingRing] = {}
        #: Idle instruments dominate most windows; their (identical)
        #: empty deltas are built once and reused.
        self._empty_deltas: dict[str, HistogramSnapshot] = {}
        self._finished = False

    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Roll every window that ``now`` (sim time) has completed."""
        while now >= self._window_start + self.window_s:
            self._roll(self._window_start + self.window_s)

    def finish(self, now: float) -> None:
        """Close out the run: roll complete windows, emit the final
        partial window (if it saw any time), write the JSONL file."""
        if self._finished:
            return
        self._finished = True
        self.advance(now)
        if now > self._window_start or not self.rows:
            self._roll(max(now, self._window_start))
        if self.out_path:
            with open(self.out_path, "w", encoding="utf-8") as handle:
                for row in self.rows:
                    handle.write(json.dumps(row, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def _roll(self, t_end: float) -> None:
        if self.resource_monitor is not None:
            self.resource_monitor.sample()
        current = self.registry.snapshot()
        previous = self._prev

        counter_deltas = {
            name: value - previous["counters"].get(name, 0)
            for name, value in current["counters"].items()
        }
        histogram_deltas: dict[str, HistogramSnapshot] = {}
        for name, snap in current["histograms"].items():
            prior = previous["histograms"].get(name)
            if prior is not None and snap.count == prior.count:
                delta = self._empty_deltas.get(name)
                if delta is None:
                    delta = self._empty_deltas[name] = snap.delta(snap)
            elif prior is not None:
                delta = snap.delta(prior)
            else:
                delta = snap
            histogram_deltas[name] = delta
            ring = self._rings.get(name)
            if ring is None:
                ring = self._rings[name] = _RollingRing(self.ring)
            ring.append(delta)

        t_start = self._window_start
        span = t_end - t_start
        row = {
            "window": self._window_index,
            "t_start": t_start,
            "t_end": t_end,
            "window_s": span,
            "throughput_rps": (
                counter_deltas.get(THROUGHPUT_COUNTER, 0) / span
                if span > 0
                else 0.0
            ),
            "counters": {
                name: value
                for name, value in sorted(counter_deltas.items())
                if value
            },
            "gauges": {
                name: value
                for name, value in sorted(current["gauges"].items())
                if value is not None
            },
            "histograms": {
                name: delta.as_dict()
                for name, delta in sorted(histogram_deltas.items())
                if delta.count
            },
            "rolling": {
                name: ring.summary()
                for name, ring in sorted(self._rings.items())
                if ring.count
            },
        }
        self.rows.append(row)
        for observer in self.observers:
            observer(row, counter_deltas, histogram_deltas)
        if (
            self.live_report_every
            and self._window_index % self.live_report_every == 0
        ):
            self._print(render_live_line(row))

        self._prev = current
        self._window_start = t_end
        self._window_index += 1

def render_live_line(row: dict) -> str:
    """One human-scannable console line for ``--live-report``."""
    counters = row["counters"]
    settled = counters.get("requests.settled", 0)
    assigned = counters.get("requests.assigned", 0)
    service = f"{assigned / settled:.0%}" if settled else "--"
    rolling = row["rolling"].get(LATENCY_INSTRUMENT)
    if rolling and rolling["p99"] is not None:
        latency = f"{rolling['p99'] * 1e3:.1f}ms"
    else:
        latency = "--"
    rss = row["gauges"].get("resource.rss_bytes")
    rss_part = f" rss={rss / 2**20:.0f}MiB" if rss is not None else ""
    return (
        f"[live] w{row['window']:>3} "
        f"t={row['t_start']:.0f}..{row['t_end']:.0f}s "
        f"settled={settled} service={service} "
        f"assign_p99={latency}{rss_part}"
    )


class LiveTelemetry:
    """The coordinator the simulator owns: recorder + SLO engine +
    resource monitor, built from :class:`repro.sim.config.
    SimulationConfig` and torn down at end of run.

    ``from_config`` returns ``None`` when no live feature is enabled,
    so the event loop's fast path stays a single ``is None`` check.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        start_time: float,
        window_s: float = 60.0,
        ring: int = 5,
        timeseries_out: str | None = None,
        slo_spec: str | None = None,
        slo_out: str | None = None,
        live_report_every: int = 0,
        monitor_resources: bool = False,
        depth_probes=(),
        print_fn=print,
    ):
        self.slo_spec = slo_spec
        self.slo_out = slo_out
        self.slo_document: dict | None = None
        self.resource_monitor = (
            ResourceMonitor(registry, depth_probes)
            if monitor_resources
            else None
        )
        objectives = parse_slo_spec(slo_spec)
        self.slo_engine = (
            SloEngine(objectives, window_s, burn_windows=ring)
            if objectives
            else None
        )
        self.recorder = TimeSeriesRecorder(
            registry,
            window_s,
            start_time,
            ring=ring,
            out_path=timeseries_out,
            live_report_every=live_report_every,
            resource_monitor=self.resource_monitor,
            print_fn=print_fn,
        )
        if self.slo_engine is not None:
            self.recorder.observers.append(self._feed_slo)

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config, registry, start_time, depth_probes=()):
        """Build from a ``SimulationConfig``; ``None`` when disabled."""
        enabled = (
            config.timeseries_out is not None
            or config.slo is not None
            or config.live_report_every > 0
            or config.resource_monitor
        )
        if not enabled:
            return None
        return cls(
            registry,
            start_time,
            window_s=config.timeseries_window_s,
            ring=config.timeseries_ring,
            timeseries_out=config.timeseries_out,
            slo_spec=config.slo,
            slo_out=config.slo_out,
            live_report_every=config.live_report_every,
            monitor_resources=config.resource_monitor,
            depth_probes=depth_probes,
        )

    # ------------------------------------------------------------------
    def _feed_slo(self, row, counter_deltas, histogram_deltas) -> None:
        self.slo_engine.observe_window(
            row["window"],
            row["t_start"],
            row["t_end"],
            counter_deltas,
            histogram_deltas,
        )

    def advance(self, now: float) -> None:
        """Per-event hook: roll any sim-time windows ``now`` completes."""
        self.recorder.advance(now)

    def finish(self, now: float) -> dict | None:
        """End of run: final window, JSONL flush, SLO verdict +
        ``slo.json``, GC-hook teardown. Returns the SLO document (or
        ``None`` when no SLO was configured). Idempotent."""
        self.recorder.finish(now)
        if self.slo_engine is not None and self.slo_document is None:
            self.slo_document = self.slo_engine.finalize(self.slo_spec)
            if self.slo_out:
                # No indent: keeps the C encoder (indent falls back to
                # the slow Python path, a visible slice of the ≤5 %
                # live budget). Pretty-print with jq / json.tool.
                with open(self.slo_out, "w", encoding="utf-8") as handle:
                    json.dump(self.slo_document, handle, sort_keys=True)
                    handle.write("\n")
        if self.resource_monitor is not None:
            self.resource_monitor.close()
        return self.slo_document
