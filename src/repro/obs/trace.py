"""Structured, thread-safe flush-pipeline spans.

One :class:`Tracer` per simulation run collects nested spans —
``flush → snapshot → quote → solve → commit``, with per-shard and
per-worker children — as flat :class:`SpanRecord` rows that the
exporters (:mod:`repro.obs.export`) turn into a Chrome trace. Two
design rules govern everything here:

* **Disabled means gone.** ``Tracer(enabled=False)`` (and the module
  singleton :data:`NULL_TRACER`) never allocates a span: ``span()``
  returns the shared :data:`NULL_SPAN` sentinel and ``emit()`` returns
  before touching the clock. The hot paths pay one attribute load and
  one branch — nothing else (gated by
  ``benchmarks/test_trace_overhead.py``).
* **Telemetry never steers dispatch.** Spans are written, never read,
  by the pipeline; no control-flow decision may consult the tracer.
  The adaptive controller's wall-clock latency guard
  (``docs/determinism.md``) remains the lone, documented exception —
  and it predates, and does not go through, this module.

Span identity
-------------

Span ids are ``"<thread>:<seq>"`` strings where ``<thread>`` is the
order in which threads first opened a span on this tracer and
``<seq>`` a per-thread counter. The thread that creates the tracer is
always thread ``0``, so every span opened on the simulator thread has
a fully deterministic id — which is what makes *parent* ids of
worker-thread spans deterministic too: workers inherit an explicit
parent handle captured on the simulator thread at task-submit time
(worker span ids themselves land on whichever pool thread ran the
task, and only their ordering is timing-dependent).

Nesting is tracked per thread: a span opened while another is open on
the same thread becomes its child unless an explicit ``parent=`` handle
overrides it (the cross-thread case).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

#: The one instrumentation clock. Every timing site in the repo reads
#: this alias (monotonic, sub-microsecond) so traces, histograms and
#: report fields are mutually comparable.
clock = time.perf_counter


@dataclass(slots=True)
class SpanRecord:
    """One finished span, flat (parenthood by id, not containment)."""

    name: str
    cat: str
    span_id: str
    parent_id: str | None
    thread: int
    start_s: float
    dur_s: float
    args: dict


class Span:
    """An open span; a context manager that records itself on exit.

    Only ever constructed by an *enabled* :class:`Tracer` — disabled
    tracers hand out the shared :data:`NULL_SPAN` instead.
    """

    __slots__ = (
        "_tracer",
        "name",
        "cat",
        "span_id",
        "parent_id",
        "thread",
        "args",
        "start_s",
        "dur_s",
    )

    def __init__(self, tracer, name, cat, span_id, parent_id, thread, args):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.args = args
        self.start_s = 0.0
        self.dur_s = 0.0

    def annotate(self, **args) -> None:
        """Attach extra key/value args to the span (last write wins)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = self._tracer._now()
        return self

    def __exit__(self, *exc) -> bool:
        self.dur_s = self._tracer._now() - self.start_s
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id})"


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (a singleton)."""

    __slots__ = ()
    name = None
    span_id = None
    parent_id = None
    start_s = 0.0
    dur_s = 0.0

    def annotate(self, **args) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: The shared no-op span. ``tracer.span(...) is NULL_SPAN`` whenever the
#: tracer is disabled — the unit-testable face of "zero span allocation".
NULL_SPAN = _NullSpan()


class _ThreadState(threading.local):
    """Per-thread open-span stack + lazily assigned thread ordinal."""

    def __init__(self):
        self.stack: list[Span] = []
        self.ordinal: int | None = None
        self.seq = 0


class Tracer:
    """Collects spans for one run; thread-safe; cheap when disabled.

    ``enabled=False`` turns every entry point into a constant-time
    no-op (see module docstring). The optional ``clock`` override
    exists for deterministic exporter tests.
    """

    def __init__(self, enabled: bool = True, clock=None):
        self.enabled = enabled
        self._clock = clock  # None = module-level perf_counter alias
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._threads = 0
        self._tls = _ThreadState()
        if enabled:
            # Claim ordinal 0 for the creating (simulator) thread so its
            # span ids are deterministic whatever the workers do.
            self._thread_ordinal()

    # -- internal ------------------------------------------------------
    def _now(self) -> float:
        return clock() if self._clock is None else self._clock()

    def _thread_ordinal(self) -> int:
        state = self._tls
        if state.ordinal is None:
            with self._lock:
                state.ordinal = self._threads
                self._threads += 1
        return state.ordinal

    def _push(self, span: Span) -> None:
        self._tls.stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._tls.stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: drop it and everything above
            del stack[stack.index(span):]
        with self._lock:
            self._records.append(
                SpanRecord(
                    name=span.name,
                    cat=span.cat,
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    thread=span.thread,
                    start_s=span.start_s,
                    dur_s=span.dur_s,
                    args=span.args,
                )
            )

    def _next_id(self) -> tuple[str, int]:
        state = self._tls
        ordinal = self._thread_ordinal()
        state.seq += 1
        return f"{ordinal}:{state.seq}", ordinal

    # -- public --------------------------------------------------------
    def span(self, name: str, cat: str = "flush", parent=None, **args):
        """Open a span (use as a context manager).

        ``parent`` accepts a :class:`Span` or a span-id string — the
        cross-thread handle a worker task receives from its issuer.
        Without it, the innermost open span on the current thread is
        the parent. Returns :data:`NULL_SPAN` when disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        span_id, ordinal = self._next_id()
        if parent is None:
            stack = self._tls.stack
            parent_id = stack[-1].span_id if stack else None
        elif isinstance(parent, str):
            parent_id = parent
        else:
            parent_id = parent.span_id
        return Span(self, name, cat, span_id, parent_id, ordinal, args)

    def emit(
        self,
        name: str,
        cat: str,
        start_s: float,
        end_s: float,
        parent=None,
        **args,
    ) -> None:
        """Record an already-timed section as a completed span.

        The migration target for pre-existing ``perf_counter()`` pairs
        whose measured value feeds a data structure either way (solver
        seconds, per-quote ART samples): the site keeps its stopwatch
        and hands the stamps here. No-op when disabled — callers may
        skip taking the stamps entirely by checking :attr:`enabled`.
        """
        if not self.enabled:
            return
        span_id, ordinal = self._next_id()
        if parent is None:
            stack = self._tls.stack
            parent_id = stack[-1].span_id if stack else None
        elif isinstance(parent, str):
            parent_id = parent
        else:
            parent_id = parent.span_id
        with self._lock:
            self._records.append(
                SpanRecord(
                    name=name,
                    cat=cat,
                    span_id=span_id,
                    parent_id=parent_id,
                    thread=ordinal,
                    start_s=start_s,
                    dur_s=max(0.0, end_s - start_s),
                    args=args,
                )
            )

    def current_id(self) -> str | None:
        """Id of the innermost open span on this thread (the handle to
        capture before submitting work to another thread)."""
        if not self.enabled:
            return None
        stack = self._tls.stack
        return stack[-1].span_id if stack else None

    def records(self) -> list[SpanRecord]:
        """Snapshot of every finished span (collection order)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __repr__(self) -> str:
        return f"Tracer(enabled={self.enabled}, records={len(self._records)})"


#: Shared disabled tracer: the default value of every ``tracer``
#: attribute in the pipeline, so un-configured call sites stay no-ops
#: without None checks.
NULL_TRACER = Tracer(enabled=False)
