"""Counters, gauges and streaming log-bucket histograms.

The :class:`MetricsRegistry` is the simulation's one home for
aggregate telemetry: instead of growing another one-off
``RunningStats`` field per metric on ``SimulationReport``, a component
asks the registry for a named instrument and records into it. The
registry serializes to the machine-readable ``metrics.json`` document
(:func:`repro.obs.export.write_metrics_json`).

Histogram bucket scheme
-----------------------

:class:`Histogram` answers p50/p90/p99 *without storing samples*:
values land in fixed log-spaced buckets whose upper bounds are

    ``lo * growth**(i + 1)``   for i = 0 .. n-1

with defaults ``lo = 1e-6`` (1 µs), ``growth = 2**0.25`` (four buckets
per octave, ~19 % relative width) and enough buckets to reach
``~4.4e3`` s — 132 integer counters covering nine decades of latency.
Values at or below ``lo`` land in bucket 0; values beyond the top
bucket land in the overflow bucket and are clamped by the tracked
maximum. A quantile is estimated by walking the cumulative counts to
the target rank and interpolating linearly inside the bucket, then
clamping to the exact observed ``[min, max]`` — so the estimate's
relative error against the bracketing exact order statistics is
bounded by the bucket width (< 19 % by default, exact for the
extremes; property-pinned in
``tests/properties/test_histogram_quantile.py``).

All instruments are thread-safe: one registry lock covers creation,
and each instrument's mutators take the registry lock too (recording
is a few arithmetic ops; contention is negligible next to the work
being measured).

Snapshots and windows
---------------------

Live telemetry (:mod:`repro.obs.live`) needs *per-interval* views of
cumulative instruments. Every instrument answers :meth:`snapshot` — an
immutable copy cheap enough to take per window — and two pure
operations turn snapshots into windows:

* ``current.delta(previous)`` — the samples recorded *between* two
  snapshots of the same instrument (bucket counts subtract exactly;
  a delta's ``min``/``max`` are the tightest *bucket bounds* of its
  nonempty ends, since exact extremes are only tracked cumulatively);
* :func:`merge_snapshots` — the union of several windows of the same
  bucket scheme (counts add), which is how the ring buffer of the last
  K window deltas answers rolling p50/p99 without storing samples.
"""

from __future__ import annotations

import math
import operator
import threading
from dataclasses import dataclass


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def snapshot(self) -> int:
        """The current value (ints are immutable; deltas subtract)."""
        with self._lock:
            return self.value

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-write-wins float (``None`` until first set)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> float | None:
        """The current value (last write wins; windows report it raw)."""
        with self._lock:
            return self.value

    def as_dict(self) -> dict:
        return {"value": self.value}


def _bucket_bounds(idx: int, lo: float, growth: float) -> tuple[float, float]:
    """The (lower, upper) value bounds of bucket ``idx`` in the scheme."""
    if idx == 0:
        return (0.0, lo)
    upper = lo * growth ** idx
    return (upper / growth, upper)


def _walk_quantile(
    counts,
    count: int,
    q: float,
    lo: float,
    growth: float,
    clamp_min: float,
    clamp_max: float,
) -> float | None:
    """Shared quantile walk over a bucket-count vector.

    Walks the cumulative counts to rank ``q * (count - 1)`` and
    interpolates within the landing bucket, clamped to
    ``[clamp_min, clamp_max]`` (the exact extremes for a live
    histogram, the tightest bucket bounds for a window delta).
    """
    return _walk_quantiles(
        counts, count, (q,), lo, growth, clamp_min, clamp_max
    )[0]


def _walk_quantiles(
    counts,
    count: int,
    qs,
    lo: float,
    growth: float,
    clamp_min: float,
    clamp_max: float,
) -> list:
    """One cumulative walk answering several quantiles (``qs`` must be
    ascending) — the hot path for window rows, which want p50/p90/p99
    of the same bucket vector."""
    return _walk_quantile_items(
        enumerate(counts), count, qs, lo, growth, clamp_min, clamp_max
    )


def _walk_quantile_items(
    items,
    count: int,
    qs,
    lo: float,
    growth: float,
    clamp_min: float,
    clamp_max: float,
) -> list:
    """The quantile walk over ``(bucket_index, count)`` pairs in
    ascending index order. Sparse callers (the rolling ring) pass just
    their nonzero buckets instead of a full 134-slot vector."""
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
    if not count:
        return [None] * len(qs)
    ranks = [q * (count - 1) for q in qs]
    results: list = []
    seen = 0
    for idx, n in items:
        if not n:
            continue
        while len(results) < len(ranks) and ranks[len(results)] < seen + n:
            low, high = _bucket_bounds(idx, lo, growth)
            frac = (ranks[len(results)] - seen + 0.5) / n
            value = low + (high - low) * frac
            results.append(min(max(value, clamp_min), clamp_max))
        if len(results) == len(ranks):
            return results
        seen += n
    while len(results) < len(ranks):  # pragma: no cover - defensive
        results.append(clamp_max)
    return results


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """An immutable view of a :class:`Histogram` (or of a window of
    one): the bucket counts plus the scheme constants needed to answer
    quantiles. Cumulative snapshots carry the exact observed extremes;
    deltas and merges carry the tightest bucket bounds instead (see
    :meth:`delta`)."""

    unit: str
    lo: float
    growth: float
    counts: tuple
    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile of this view; ``None`` if empty."""
        return _walk_quantile(
            self.counts, self.count, q, self.lo, self.growth, self.min, self.max
        )

    def delta(self, previous: "HistogramSnapshot") -> "HistogramSnapshot":
        """The window between ``previous`` and this snapshot of the
        same instrument: bucket counts subtract exactly. The window's
        ``min``/``max`` cannot be recovered from cumulative extremes,
        so the delta clamps to the bounds of its lowest/highest
        nonempty bucket — quantile error stays within the documented
        bucket width."""
        if (self.lo, self.growth) != (previous.lo, previous.growth):
            raise ValueError("cannot delta snapshots of different schemes")
        if self.count == previous.count:
            # Idle instrument: buckets only grow, so equal totals mean
            # equal buckets — skip the per-bucket subtraction (windows
            # roll far more often than most instruments change).
            return HistogramSnapshot(
                unit=self.unit,
                lo=self.lo,
                growth=self.growth,
                counts=(0,) * len(self.counts),
                count=0,
                total=0.0,
                min=math.inf,
                max=-math.inf,
            )
        counts = tuple(map(operator.sub, self.counts, previous.counts))
        if min(counts) < 0:
            raise ValueError("delta against a newer snapshot")
        return _rebound(
            HistogramSnapshot(
                unit=self.unit,
                lo=self.lo,
                growth=self.growth,
                counts=counts,
                count=self.count - previous.count,
                total=self.total - previous.total,
                min=math.inf,
                max=-math.inf,
            )
        )

    def as_dict(self) -> dict:
        """Summary shaped like ``Histogram.as_dict`` (p50/p90/p99)."""
        p50, p90, p99 = _walk_quantiles(
            self.counts, self.count, (0.50, 0.90, 0.99),
            self.lo, self.growth, self.min, self.max,
        )
        return {
            "unit": self.unit,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }


def _rebound(snap: HistogramSnapshot) -> HistogramSnapshot:
    """Tighten a windowed snapshot's clamp range to the bounds of its
    nonempty bucket ends (exact extremes are unknowable for windows)."""
    if not snap.count:
        return snap
    nonempty = [i for i, n in enumerate(snap.counts) if n]
    low = _bucket_bounds(nonempty[0], snap.lo, snap.growth)[0]
    high = _bucket_bounds(nonempty[-1], snap.lo, snap.growth)[1]
    # Keep the clamp consistent with the tracked mean: a window whose
    # every sample sits in one bucket still reports mean inside it.
    return HistogramSnapshot(
        unit=snap.unit,
        lo=snap.lo,
        growth=snap.growth,
        counts=snap.counts,
        count=snap.count,
        total=snap.total,
        min=low,
        max=high,
    )


def merge_snapshots(snapshots) -> HistogramSnapshot:
    """Union several windows of the same bucket scheme (counts add) —
    the rolling-quantile merge over a ring of window deltas."""
    snapshots = list(snapshots)
    if not snapshots:
        raise ValueError("nothing to merge")
    first = snapshots[0]
    for snap in snapshots[1:]:
        if (snap.lo, snap.growth) != (first.lo, first.growth):
            raise ValueError("cannot merge snapshots of different schemes")
    live = [s for s in snapshots if s.count]
    if len(live) == 1:  # common in rolling rings: one active window
        return live[0]
    counts = list(first.counts)
    count, total = first.count, first.total
    low, high = first.min, first.max
    for snap in snapshots[1:]:
        if not snap.count:
            continue  # all-zero buckets: nothing to fold in
        for i, n in enumerate(snap.counts):
            if n:
                counts[i] += n
        count += snap.count
        total += snap.total
        low = min(low, snap.min)
        high = max(high, snap.max)
    return HistogramSnapshot(
        unit=first.unit,
        lo=first.lo,
        growth=first.growth,
        counts=tuple(counts),
        count=count,
        total=total,
        min=low,
        max=high,
    )


class Histogram:
    """Streaming histogram over fixed log-spaced buckets.

    See the module docstring for the bucket scheme. ``unit`` is
    annotation only (it names the sample unit in exports).
    """

    __slots__ = (
        "_lock",
        "unit",
        "lo",
        "growth",
        "_log_growth",
        "counts",
        "count",
        "total",
        "min",
        "max",
        "_snap",
    )

    #: Default scheme: 1 µs floor, four buckets per octave, 132 buckets
    #: (reaches ~4.4e3 seconds before overflow).
    DEFAULT_LO = 1e-6
    DEFAULT_GROWTH = 2.0 ** 0.25
    DEFAULT_BUCKETS = 132

    def __init__(
        self,
        lock: threading.Lock | None = None,
        unit: str = "s",
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        num_buckets: int = DEFAULT_BUCKETS,
    ):
        if lo <= 0 or growth <= 1 or num_buckets < 1:
            raise ValueError("need lo > 0, growth > 1, num_buckets >= 1")
        self._lock = lock if lock is not None else threading.Lock()
        self.unit = unit
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        # counts[0] <= lo; counts[1..n] log buckets; counts[n+1] overflow.
        self.counts = [0] * (num_buckets + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._snap: HistogramSnapshot | None = None

    # -- recording -----------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        idx = int(math.ceil(math.log(value / self.lo) / self._log_growth))
        return min(idx, len(self.counts) - 1)

    def add(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[self._bucket(value)] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._snap = None

    # -- queries -------------------------------------------------------
    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def _bounds(self, idx: int) -> tuple[float, float]:
        """The (lower, upper) value bounds of bucket ``idx``."""
        return _bucket_bounds(idx, self.lo, self.growth)

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (``0 <= q <= 1``); ``None`` if empty.

        Walks the cumulative counts to rank ``q * (count - 1)`` and
        interpolates within the landing bucket, clamped to the exact
        observed extremes.
        """
        with self._lock:
            return _walk_quantile(
                self.counts, self.count, q, self.lo, self.growth,
                self.min, self.max,
            )

    def snapshot(self) -> HistogramSnapshot:
        """An immutable copy of the current state (exact extremes).

        Cached until the next :meth:`add` — the live layer snapshots
        every instrument every window roll, and most instruments are
        idle in most windows."""
        with self._lock:
            if self._snap is None:
                self._snap = HistogramSnapshot(
                    unit=self.unit,
                    lo=self.lo,
                    growth=self.growth,
                    counts=tuple(self.counts),
                    count=self.count,
                    total=self.total,
                    min=self.min,
                    max=self.max,
                )
            return self._snap

    def delta(self, previous: HistogramSnapshot) -> HistogramSnapshot:
        """The window of samples recorded since ``previous`` (a
        snapshot of *this* instrument)."""
        return self.snapshot().delta(previous)

    def as_dict(self) -> dict:
        """Summary for ``metrics.json``: moments plus p50/p90/p99."""
        return {
            "unit": self.unit,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, export-ready.

    One registry per simulation run. Creation and recording are
    thread-safe; names are flat strings by convention dotted by
    subsystem (``flush.solve_s``, ``engine.distance_many_s``).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._lock)
            return instrument

    def histogram(self, name: str, unit: str = "s", **kwargs) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    self._lock, unit=unit, **kwargs
                )
            return instrument

    def as_dict(self) -> dict:
        """The full registry, serialization-shaped (sorted names)."""
        with self._lock:  # snapshot only; serialize outside the lock
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.as_dict() for k, v in sorted(counters.items())},
            "gauges": {k: v.as_dict() for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(histograms.items())
            },
        }

    def snapshot(self) -> dict:
        """Point-in-time copy of every instrument, shaped like
        :meth:`as_dict` but holding raw values / immutable
        :class:`HistogramSnapshot` objects — the unit the live layer
        diffs per window. Instruments created after a snapshot simply
        appear in the next one (their whole history is the delta)."""
        with self._lock:  # copy the maps only; snapshot outside the lock
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.snapshot() for k, v in counters.items()},
            "gauges": {k: v.snapshot() for k, v in gauges.items()},
            "histograms": {k: v.snapshot() for k, v in histograms.items()},
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
