"""Counters, gauges and streaming log-bucket histograms.

The :class:`MetricsRegistry` is the simulation's one home for
aggregate telemetry: instead of growing another one-off
``RunningStats`` field per metric on ``SimulationReport``, a component
asks the registry for a named instrument and records into it. The
registry serializes to the machine-readable ``metrics.json`` document
(:func:`repro.obs.export.write_metrics_json`).

Histogram bucket scheme
-----------------------

:class:`Histogram` answers p50/p90/p99 *without storing samples*:
values land in fixed log-spaced buckets whose upper bounds are

    ``lo * growth**(i + 1)``   for i = 0 .. n-1

with defaults ``lo = 1e-6`` (1 µs), ``growth = 2**0.25`` (four buckets
per octave, ~19 % relative width) and enough buckets to reach
``~4.4e3`` s — 132 integer counters covering nine decades of latency.
Values at or below ``lo`` land in bucket 0; values beyond the top
bucket land in the overflow bucket and are clamped by the tracked
maximum. A quantile is estimated by walking the cumulative counts to
the target rank and interpolating linearly inside the bucket, then
clamping to the exact observed ``[min, max]`` — so the estimate's
relative error is bounded by the bucket width (< 19 % by default, and
exact for the extremes).

All instruments are thread-safe: one registry lock covers creation,
and each instrument's mutators take the registry lock too (recording
is a few arithmetic ops; contention is negligible next to the work
being measured).
"""

from __future__ import annotations

import math
import threading


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-write-wins float (``None`` until first set)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Streaming histogram over fixed log-spaced buckets.

    See the module docstring for the bucket scheme. ``unit`` is
    annotation only (it names the sample unit in exports).
    """

    __slots__ = (
        "_lock",
        "unit",
        "lo",
        "growth",
        "_log_growth",
        "counts",
        "count",
        "total",
        "min",
        "max",
    )

    #: Default scheme: 1 µs floor, four buckets per octave, 132 buckets
    #: (reaches ~4.4e3 seconds before overflow).
    DEFAULT_LO = 1e-6
    DEFAULT_GROWTH = 2.0 ** 0.25
    DEFAULT_BUCKETS = 132

    def __init__(
        self,
        lock: threading.Lock | None = None,
        unit: str = "s",
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        num_buckets: int = DEFAULT_BUCKETS,
    ):
        if lo <= 0 or growth <= 1 or num_buckets < 1:
            raise ValueError("need lo > 0, growth > 1, num_buckets >= 1")
        self._lock = lock if lock is not None else threading.Lock()
        self.unit = unit
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        # counts[0] <= lo; counts[1..n] log buckets; counts[n+1] overflow.
        self.counts = [0] * (num_buckets + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording -----------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        idx = int(math.ceil(math.log(value / self.lo) / self._log_growth))
        return min(idx, len(self.counts) - 1)

    def add(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[self._bucket(value)] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # -- queries -------------------------------------------------------
    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def _bounds(self, idx: int) -> tuple[float, float]:
        """The (lower, upper) value bounds of bucket ``idx``."""
        if idx == 0:
            return (0.0, self.lo)
        upper = self.lo * self.growth ** idx
        return (upper / self.growth, upper)

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (``0 <= q <= 1``); ``None`` if empty.

        Walks the cumulative counts to rank ``q * (count - 1)`` and
        interpolates within the landing bucket, clamped to the exact
        observed extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if not self.count:
                return None
            rank = q * (self.count - 1)
            seen = 0
            for idx, n in enumerate(self.counts):
                if not n:
                    continue
                if rank < seen + n:
                    low, high = self._bounds(idx)
                    frac = (rank - seen + 0.5) / n
                    value = low + (high - low) * frac
                    return min(max(value, self.min), self.max)
                seen += n
            return self.max  # pragma: no cover - rank always lands above

    def as_dict(self) -> dict:
        """Summary for ``metrics.json``: moments plus p50/p90/p99."""
        return {
            "unit": self.unit,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, export-ready.

    One registry per simulation run. Creation and recording are
    thread-safe; names are flat strings by convention dotted by
    subsystem (``flush.solve_s``, ``engine.distance_many_s``).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._lock)
            return instrument

    def histogram(self, name: str, unit: str = "s", **kwargs) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    self._lock, unit=unit, **kwargs
                )
            return instrument

    def as_dict(self) -> dict:
        """The full registry, serialization-shaped (sorted names)."""
        with self._lock:  # snapshot only; serialize outside the lock
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.as_dict() for k, v in sorted(counters.items())},
            "gauges": {k: v.as_dict() for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
